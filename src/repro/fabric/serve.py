"""``repro serve``: the fabric as a long-running HTTP service.

A thin stdlib-only (``http.server``) front end over one shared
:class:`~repro.fabric.scheduler.FabricScheduler`.  Clients POST
experiment specs; the service expands them into content-addressed
cells, answers anything already in the shared
:class:`~repro.exp.cache.ResultCache` instantly, and multiplexes the
misses onto the fabric -- concurrent submissions of overlapping grids
collapse onto the same tasks.

API (all JSON)::

    GET  /v1/healthz        liveness probe
    GET  /v1/stats          service + scheduler + cache counters
    GET  /v1/jobs/<id>      job status, progress, per-cell results
    POST /v1/experiments    submit a grid spec, returns a job document
    POST /v1/shutdown       drain and stop the server

An experiment spec is the JSON shape of the CLI grid flags::

    {"workloads": ["queue", "heap"], "models": ["baseline", "asap"],
     "ops": 200, "threads": 2, "seed": 7}

Completed cells carry a ``fingerprint_sha`` -- the SHA-256 of the
cell's deterministic result fingerprint -- so clients can compare runs
without shipping the whole stats registry over the wire.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro.exp.cache import ResultCache
from repro.exp.spec import RunSpec, execute_spec
from repro.fabric.scheduler import FabricJob, FabricScheduler
from repro.fabric.tasks import envelope_for, fingerprint_sha


class SpecError(ValueError):
    """A submitted experiment document is malformed (HTTP 400)."""


class _ServiceJob:
    """One submitted experiment: cached cells + a fabric job for misses."""

    def __init__(
        self,
        job_id: str,
        specs: List[RunSpec],
        cached: Dict[int, Any],
        fabric_job: Optional[FabricJob],
        pending_index: List[int],
    ) -> None:
        self.job_id = job_id
        self.specs = specs
        self.cached = cached  # plan index -> WorkloadResult (cache hits)
        self.fabric_job = fabric_job
        self.pending_index = pending_index  # plan index of each fabric task

    @property
    def total(self) -> int:
        return len(self.specs)

    @property
    def completed(self) -> int:
        done = len(self.cached)
        if self.fabric_job is not None:
            done += self.fabric_job.completed
        return done

    def state(self) -> str:
        if self.fabric_job is None or self.fabric_job.done:
            if any(
                outcome is not None and not outcome.ok
                for outcome in (
                    self.fabric_job.outcomes() if self.fabric_job else []
                )
            ):
                return "failed"
            return "done"
        return "running"

    def cells(self) -> List[Dict[str, Any]]:
        """Per-cell status documents, in plan order."""
        by_index: Dict[int, Any] = dict(self.cached)
        errors: Dict[int, str] = {}
        if self.fabric_job is not None:
            for position, outcome in enumerate(self.fabric_job.outcomes()):
                if outcome is None:
                    continue
                index = self.pending_index[position]
                if outcome.ok:
                    by_index[index] = outcome.value
                else:
                    errors[index] = outcome.error or "task failed"
        docs: List[Dict[str, Any]] = []
        for index, spec in enumerate(self.specs):
            cell: Dict[str, Any] = {
                "workload": spec.workload,
                "model": spec.model.name,
                "seed": spec.seed,
                "cached": index in self.cached,
            }
            if index in by_index:
                cell["fingerprint_sha"] = fingerprint_sha(by_index[index])
            elif index in errors:
                cell["error"] = errors[index]
            else:
                cell["pending"] = True
            docs.append(cell)
        return docs


class FabricService:
    """The serve-side brain: spec parsing, cache pre-check, job registry."""

    def __init__(
        self,
        scheduler: FabricScheduler,
        cache_dir: Optional[str] = None,
    ) -> None:
        self.scheduler = scheduler
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self._lock = threading.Lock()
        self._jobs: Dict[str, _ServiceJob] = {}
        self._job_seq = 0
        self.counters: Dict[str, int] = {
            "requests": 0,
            "experiments_submitted": 0,
            "cells_submitted": 0,
            "cells_cache_hit": 0,
        }

    # -- submission ----------------------------------------------------------

    def submit(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        """Expand ``doc`` into cells, serve hits, fan out misses."""
        specs = self._parse_spec(doc)
        cached: Dict[int, Any] = {}
        pending: List[Tuple[int, RunSpec]] = []
        for index, spec in enumerate(specs):
            hit = self.cache.get(spec) if self.cache is not None else None
            if hit is not None:
                cached[index] = hit
            else:
                pending.append((index, spec))
        fabric_job: Optional[FabricJob] = None
        if pending:
            fabric_job = self.scheduler.submit(
                [envelope_for(execute_spec, spec) for _, spec in pending]
            )
        with self._lock:
            self._job_seq += 1
            job = _ServiceJob(
                job_id=f"exp-{self._job_seq}",
                specs=specs,
                cached=cached,
                fabric_job=fabric_job,
                pending_index=[index for index, _ in pending],
            )
            self._jobs[job.job_id] = job
            self.counters["experiments_submitted"] += 1
            self.counters["cells_submitted"] += len(specs)
            self.counters["cells_cache_hit"] += len(cached)
        return self.job_doc(job.job_id)

    def _parse_spec(self, doc: Dict[str, Any]) -> List[RunSpec]:
        if not isinstance(doc, dict):
            raise SpecError("experiment spec must be a JSON object")
        workloads = doc.get("workloads")
        models = doc.get("models")
        if not isinstance(workloads, list) or not workloads:
            raise SpecError('spec needs a non-empty "workloads" list')
        if not isinstance(models, list) or not models:
            raise SpecError('spec needs a non-empty "models" list')
        ops = doc.get("ops")
        threads = doc.get("threads")
        seed = doc.get("seed", 7)
        unknown = set(doc) - {"workloads", "models", "ops", "threads", "seed"}
        if unknown:
            raise SpecError(f"unknown spec fields: {sorted(unknown)}")
        try:
            return [
                RunSpec(
                    workload,
                    model,
                    ops_per_thread=ops,
                    num_threads=threads,
                    seed=seed,
                )
                for workload in workloads
                for model in models
            ]
        except (KeyError, ValueError, TypeError) as exc:
            raise SpecError(str(exc)) from exc

    # -- documents -----------------------------------------------------------

    def job_doc(self, job_id: str) -> Dict[str, Any]:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(job_id)
        return {
            "job": job.job_id,
            "state": job.state(),
            "total": job.total,
            "completed": job.completed,
            "cached": len(job.cached),
            "cells": job.cells(),
        }

    def stats_doc(self) -> Dict[str, Any]:
        with self._lock:
            service = dict(self.counters)
            jobs = len(self._jobs)
        doc: Dict[str, Any] = {
            "service": service,
            "jobs": jobs,
            "scheduler": self.scheduler.counters_snapshot(),
        }
        if self.cache is not None:
            doc["cache"] = {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
            }
        return doc


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs+paths onto the :class:`FabricService`."""

    server: "FabricHTTPServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:
            super().log_message(format, *args)

    def _reply(self, status: int, doc: Dict[str, Any]) -> None:
        body = json.dumps(doc, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise SpecError("empty request body")
        try:
            return json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise SpecError(f"request body is not JSON: {exc}") from exc

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 -- http.server API
        service = self.server.service
        service.counters["requests"] += 1
        if self.path == "/v1/healthz":
            self._reply(200, {"ok": True})
        elif self.path == "/v1/stats":
            self._reply(200, service.stats_doc())
        elif self.path.startswith("/v1/jobs/"):
            job_id = self.path[len("/v1/jobs/"):]
            try:
                self._reply(200, service.job_doc(job_id))
            except KeyError:
                self._reply(404, {"error": f"unknown job {job_id!r}"})
        else:
            self._reply(404, {"error": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 -- http.server API
        service = self.server.service
        service.counters["requests"] += 1
        if self.path == "/v1/experiments":
            try:
                doc = service.submit(self._read_json())
            except SpecError as exc:
                self._reply(400, {"error": str(exc)})
                return
            self._reply(200, doc)
        elif self.path == "/v1/shutdown":
            self._reply(200, {"ok": True, "shutting_down": True})
            # shutdown() blocks until serve_forever returns, so it must
            # run outside this handler thread.
            threading.Thread(
                target=self.server.shutdown, daemon=True
            ).start()
        else:
            self._reply(404, {"error": f"no route {self.path!r}"})


class FabricHTTPServer(ThreadingHTTPServer):
    """HTTP front end bound to one :class:`FabricService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: FabricService,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose


def serve(
    host: str = "127.0.0.1",
    port: int = 8642,
    jobs: int = 2,
    queue_dir: Optional[str] = None,
    cache_dir: Optional[str] = None,
    verbose: bool = True,
) -> None:
    """Run the fabric service until SIGINT or POST /v1/shutdown."""
    with FabricScheduler(
        jobs=jobs, queue_dir=queue_dir, cache_dir=cache_dir
    ) as scheduler:
        service = FabricService(scheduler, cache_dir=cache_dir)
        server = FabricHTTPServer((host, port), service, verbose=verbose)
        try:
            server.serve_forever(poll_interval=0.1)
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()


__all__ = [
    "FabricHTTPServer",
    "FabricService",
    "SpecError",
    "serve",
]
