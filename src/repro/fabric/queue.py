"""The directory queue: crash-safe shared state of one fabric.

Layout under the queue root::

    tasks/<task_id>.task     pickled TaskEnvelope (written once, atomic)
    leases/<task_id>.lease   JSON {worker, pid, ts} -- O_EXCL claim token
    results/<task_id>.pkl    pickled TaskOutcome (atomic tmp + rename)
    results.jsonl            scheduler-appended incremental progress
    STOP                     sentinel: workers drain and exit

Every mutation is either an atomic rename or an ``O_CREAT | O_EXCL``
create, so the queue tolerates SIGKILL at any instant on either side:

- a killed **writer** leaves at worst a ``.tmp-*`` orphan, never a
  truncated entry (readers treat an unreadable pickle as absent and
  evict it);
- a killed **worker** leaves a lease with a dead pid; the scheduler
  reaps it and the task becomes claimable again (work stealing);
- two workers racing on the same task -- possible only after a lease
  was stolen from a slow-but-alive worker -- both write byte-identical
  results (tasks are deterministic), so the rename race is harmless.

The queue is plain files on purpose: any process that can see the
directory (including ``repro fabric worker`` started by hand on a
shared filesystem) can join the fabric.
"""

from __future__ import annotations

import json
import os
import pathlib
import pickle
import tempfile
from dataclasses import dataclass
from typing import Any, List, Optional, Union

from repro.fabric.tasks import TaskEnvelope, TaskOutcome


@dataclass(frozen=True)
class LeaseInfo:
    """The claim token one worker holds on one task."""

    task_id: str
    worker: str
    pid: int
    ts: float


class FabricQueue:
    """Filesystem-backed task queue shared by scheduler and workers."""

    def __init__(self, root: Union[str, "os.PathLike[str]"], create: bool = True) -> None:
        self.root = pathlib.Path(root)
        self.tasks_dir = self.root / "tasks"
        self.leases_dir = self.root / "leases"
        self.results_dir = self.root / "results"
        if create:
            for directory in (self.tasks_dir, self.leases_dir,
                              self.results_dir):
                directory.mkdir(parents=True, exist_ok=True)

    # -- paths --------------------------------------------------------------

    def _task_path(self, task_id: str) -> pathlib.Path:
        return self.tasks_dir / f"{task_id}.task"

    def _lease_path(self, task_id: str) -> pathlib.Path:
        return self.leases_dir / f"{task_id}.lease"

    def _result_path(self, task_id: str) -> pathlib.Path:
        return self.results_dir / f"{task_id}.pkl"

    @property
    def stream_path(self) -> pathlib.Path:
        return self.root / "results.jsonl"

    @property
    def stop_path(self) -> pathlib.Path:
        return self.root / "STOP"

    # -- tasks --------------------------------------------------------------

    def add_task(self, env: TaskEnvelope) -> None:
        """Persist one envelope (idempotent: same id, same bytes)."""
        path = self._task_path(env.task_id)
        if path.exists():
            return
        self._atomic_write(path, pickle.dumps(env, protocol=4))

    def read_task(self, task_id: str) -> Optional[TaskEnvelope]:
        return self._read_pickle(self._task_path(task_id))

    def task_ids(self) -> List[str]:
        return sorted(p.stem for p in self.tasks_dir.glob("*.task"))

    # -- leases -------------------------------------------------------------

    def try_claim(self, task_id: str, worker: str, ts: float) -> bool:
        """Atomically claim ``task_id``; False if someone else holds it."""
        try:
            fd = os.open(
                self._lease_path(task_id),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as fh:
            json.dump(
                {"worker": worker, "pid": os.getpid(), "ts": ts}, fh
            )
        return True

    def claim_next(self, worker: str, ts: float) -> Optional[TaskEnvelope]:
        """Claim the first unleased, unfinished task (None when idle)."""
        for task_id in self.task_ids():
            if self._result_path(task_id).exists():
                continue
            if self._lease_path(task_id).exists():
                continue
            if not self.try_claim(task_id, worker, ts):
                continue  # lost the race; move on
            env = self.read_task(task_id)
            if env is None:  # unreadable task file: give the claim back
                self.release_lease(task_id)
                continue
            return env
        return None

    def lease_info(self, task_id: str) -> Optional[LeaseInfo]:
        path = self._lease_path(task_id)
        try:
            with path.open() as fh:
                doc = json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None
        try:
            return LeaseInfo(
                task_id=task_id,
                worker=str(doc["worker"]),
                pid=int(doc["pid"]),
                ts=float(doc["ts"]),
            )
        except (KeyError, TypeError, ValueError):
            return None

    def lease_ids(self) -> List[str]:
        return sorted(p.stem for p in self.leases_dir.glob("*.lease"))

    def release_lease(self, task_id: str) -> None:
        try:
            self._lease_path(task_id).unlink()
        except FileNotFoundError:
            pass

    # -- results ------------------------------------------------------------

    def write_result(self, outcome: TaskOutcome) -> None:
        self._atomic_write(
            self._result_path(outcome.task_id),
            pickle.dumps(outcome, protocol=4),
        )

    def read_result(self, task_id: str) -> Optional[TaskOutcome]:
        """The outcome for ``task_id``; unreadable entries are evicted
        (the task becomes claimable again)."""
        outcome = self._read_pickle(self._result_path(task_id))
        if outcome is not None and not isinstance(outcome, TaskOutcome):
            self._result_path(task_id).unlink(missing_ok=True)
            return None
        return outcome

    def result_ids(self) -> List[str]:
        return sorted(p.stem for p in self.results_dir.glob("*.pkl"))

    # -- lifecycle ----------------------------------------------------------

    def stop(self) -> None:
        """Ask every worker polling this queue to drain and exit."""
        if not self.stop_path.exists():
            self._atomic_write(self.stop_path, b"stop\n")

    def stopped(self) -> bool:
        return self.stop_path.exists()

    def resume(self) -> None:
        """Clear a STOP sentinel (a persistent queue being reused)."""
        try:
            self.stop_path.unlink()
        except FileNotFoundError:
            pass

    # -- plumbing -----------------------------------------------------------

    def _read_pickle(self, path: pathlib.Path) -> Optional[Any]:
        try:
            with path.open("rb") as fh:
                data = fh.read()
        except (FileNotFoundError, OSError):
            return None
        try:
            return pickle.loads(data)
        except Exception:
            # garbage from a non-atomic filesystem or a torn writer:
            # evict so the producer side runs (or re-runs) the task.
            path.unlink(missing_ok=True)
            return None

    def _atomic_write(self, path: pathlib.Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


__all__ = ["FabricQueue", "LeaseInfo"]
