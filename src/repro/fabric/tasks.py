"""Fabric tasks: the unit of work the scheduler ships to workers.

A :class:`TaskEnvelope` wraps one content-addressed piece of work --
an experiment cell (:class:`repro.exp.spec.RunSpec`), a crash point
(:class:`repro.crashtest.campaign.CrashPointSpec`), a litmus cell
(:class:`repro.litmus.spec.LitmusSpec`), or a generic ``(fn, item)``
call -- into a picklable record the directory queue can persist and any
worker process can execute.

Two properties carry the fabric's exactly-once-results guarantee:

1. **Content-addressed identity.**  ``task_id`` is derived from the
   spec's own :meth:`key` (SHA-256 of everything that determines the
   result) for the spec kinds, so re-enqueueing the same cell -- from a
   retry, a second campaign, or a concurrent ``repro serve`` submission
   -- collapses onto the same task, and two workers racing on it write
   byte-identical results.
2. **Kind-based dispatch.**  The envelope records a *kind*, not a
   pickled function, for the spec kinds; workers resolve the trampoline
   by import, so an externally attached worker (``repro fabric
   worker``) only needs the same source tree, not a pickle of the
   scheduler's closure state.  The generic ``call`` kind pickles the
   (module-level) function itself and is the escape hatch the bench
   tenant uses.

Simulation is deterministic given a spec, so a retried or duplicated
execution always reproduces the same result -- "at-least-once
execution, exactly-once results".
"""

from __future__ import annotations

import hashlib
import importlib
import json
import pickle
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

#: bump when envelope encoding or dispatch semantics change.
FABRIC_SCHEMA_VERSION = 1

#: trampoline qualname -> task kind (resolved lazily; importing the
#: heavy campaign modules is deferred until a task of that kind runs).
_KIND_BY_TRAMPOLINE: Dict[str, str] = {
    "repro.exp.spec:execute_spec": "run",
    "repro.crashtest.campaign:execute_crash_point": "crash",
    "repro.litmus.spec:execute_litmus_spec": "litmus",
}

#: task kind -> trampoline to import and call with the payload spec.
_TRAMPOLINE_BY_KIND: Dict[str, str] = {
    kind: ref for ref, kind in _KIND_BY_TRAMPOLINE.items()
}

#: kinds whose payload is a content-addressed spec with ``.key()`` --
#: these participate in the shared ResultCache store.
SPEC_KINDS = frozenset(_TRAMPOLINE_BY_KIND)


@dataclass(frozen=True)
class TaskEnvelope:
    """One schedulable unit: id, dispatch kind, payload, display label."""

    task_id: str
    kind: str
    payload: Any
    label: str


@dataclass(frozen=True)
class TaskOutcome:
    """What a worker wrote back for one task."""

    task_id: str
    ok: bool
    value: Any = None
    error: Optional[str] = None
    worker: str = ""
    cached: bool = False


class FabricTaskError(RuntimeError):
    """A task raised (or repeatedly killed its worker); the fabric
    completed the campaign but this task has no usable result."""


def _qualname(fn: Callable[..., Any]) -> str:
    return f"{fn.__module__}:{fn.__qualname__}"


def _resolve(ref: str) -> Callable[[Any], Any]:
    module_name, _, attr = ref.partition(":")
    module = importlib.import_module(module_name)
    fn: Callable[[Any], Any] = getattr(module, attr)
    return fn


def kind_for(fn: Callable[[Any], Any]) -> str:
    """The task kind a map function dispatches as (``call`` if unknown)."""
    return _KIND_BY_TRAMPOLINE.get(_qualname(fn), "call")


def envelope_for(fn: Callable[[Any], Any], item: Any) -> TaskEnvelope:
    """Wrap one ``executor.map`` item into an envelope.

    Spec kinds are addressed by their content hash; generic calls by the
    hash of the function's qualname plus the pickled item (stable within
    one scheduler run, which is all retry needs).
    """
    kind = kind_for(fn)
    if kind in SPEC_KINDS:
        task_id = hashlib.sha256(
            f"{kind}:{item.key()}".encode("utf-8")
        ).hexdigest()
        label = str(item.label())
        return TaskEnvelope(task_id=task_id, kind=kind, payload=item,
                            label=label)
    blob = pickle.dumps((_qualname(fn), item), protocol=4)
    task_id = hashlib.sha256(b"call:" + blob).hexdigest()
    return TaskEnvelope(
        task_id=task_id,
        kind="call",
        payload=(fn, item),
        label=f"call:{fn.__qualname__}",
    )


def execute_envelope(env: TaskEnvelope, cache: Optional[Any] = None) -> Tuple[Any, bool]:
    """Run one envelope in the current process.

    Returns ``(result, cached)``.  For spec kinds ``cache`` (a
    :class:`repro.exp.cache.ResultCache` or None) is consulted first and
    populated after a fresh run -- the cache directory is the fabric's
    shared store, so any worker's completed cell is every future
    campaign's cache hit.
    """
    if env.kind in SPEC_KINDS:
        spec = env.payload
        if cache is not None:
            hit = cache.get(spec)
            if hit is not None:
                return hit, True
        result = _resolve(_TRAMPOLINE_BY_KIND[env.kind])(spec)
        if cache is not None:
            cache.put(spec, result)
        return result, False
    if env.kind == "call":
        fn, item = env.payload
        return fn(item), False
    raise FabricTaskError(f"unknown task kind {env.kind!r}")


def fingerprint_sha(result: Any) -> str:
    """Stable hex digest of a WorkloadResult fingerprint.

    Used by the grid document and the serve results payload so two runs
    of the same cell can be compared without shipping the whole stats
    registry over the wire.
    """

    def plain(value: Any) -> Any:
        if isinstance(value, tuple):
            return [plain(v) for v in value]
        return value

    payload = json.dumps(
        plain(result.fingerprint()), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


__all__ = [
    "FABRIC_SCHEMA_VERSION",
    "FabricTaskError",
    "SPEC_KINDS",
    "TaskEnvelope",
    "TaskOutcome",
    "envelope_for",
    "execute_envelope",
    "fingerprint_sha",
    "kind_for",
]
