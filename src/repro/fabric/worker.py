"""The fabric worker loop.

A worker is one process that repeatedly claims a task from the
directory queue, executes it, and writes the outcome back.  Workers are
intentionally dumb: all fault-tolerance policy (lease reaping, retry
budgets, respawn, chaos injection) lives in the scheduler, so a worker
can be SIGKILLed at any instant without corrupting shared state --
the worst it leaves behind is a lease the scheduler will steal.

Workers are normally spawned by :class:`repro.fabric.scheduler.
FabricScheduler`, but ``repro fabric worker --queue DIR`` attaches an
extra one from any process (or any machine sharing the filesystem) --
that is the horizontal-scaling path.

A task that *raises* is not retried: the exception is deterministic
(simulation is), so the error string is written as the task's outcome
and surfaces at ``map()`` as a :class:`~repro.fabric.tasks.
FabricTaskError`.  Only worker *death* triggers the lease-steal retry
path.
"""

from __future__ import annotations

import os
import time
from typing import Optional, Union

from repro.fabric.queue import FabricQueue
from repro.fabric.tasks import TaskOutcome, execute_envelope


def worker_loop(
    queue_dir: Union[str, "os.PathLike[str]"],
    worker_id: str,
    cache_dir: Optional[str] = None,
    poll_interval: float = 0.02,
    max_idle_s: Optional[float] = None,
) -> int:
    """Claim-execute-report until the queue's STOP sentinel appears.

    ``cache_dir`` makes the shared :class:`repro.exp.cache.ResultCache`
    available to spec-kind tasks (hit = skip simulation; fresh results
    are written back for every future tenant).  ``max_idle_s`` bounds
    how long an externally attached worker lingers with nothing to do.
    Returns the number of tasks this worker completed.
    """
    queue = FabricQueue(queue_dir)
    cache = None
    if cache_dir is not None:
        from repro.exp.cache import ResultCache

        cache = ResultCache(cache_dir)
    completed = 0
    idle_since: Optional[float] = None
    while not queue.stopped():
        env = queue.claim_next(worker_id, ts=time.time())
        if env is None:
            now = time.time()
            if idle_since is None:
                idle_since = now
            elif max_idle_s is not None and now - idle_since > max_idle_s:
                break
            time.sleep(poll_interval)
            continue
        idle_since = None
        try:
            value, cached = execute_envelope(env, cache=cache)
            outcome = TaskOutcome(
                task_id=env.task_id, ok=True, value=value,
                worker=worker_id, cached=cached,
            )
        except BaseException as exc:  # noqa: BLE001 -- report, don't die
            outcome = TaskOutcome(
                task_id=env.task_id, ok=False,
                error=f"{type(exc).__name__}: {exc}", worker=worker_id,
            )
        queue.write_result(outcome)
        completed += 1
    return completed


def spawned_worker_main(
    queue_dir: str,
    worker_id: str,
    cache_dir: Optional[str],
    poll_interval: float,
) -> None:
    """Entry point for scheduler-spawned ``multiprocessing.Process``es."""
    worker_loop(
        queue_dir, worker_id, cache_dir=cache_dir,
        poll_interval=poll_interval,
    )


__all__ = ["spawned_worker_main", "worker_loop"]
