"""FabricExecutor: the fabric behind the `repro.exp` executor protocol.

Anything that already fans work out through ``executor.map`` --
:func:`repro.exp.plan.run_plan`, :func:`repro.crashtest.campaign.
run_campaign`, :func:`repro.litmus.runner.run_litmus`, the bench suite
runner -- can swap its process pool for the fault-tolerant fabric by
passing one of these instead.  Results come back in input order, so it
is a drop-in replacement: same campaign document bytes, different
execution substrate.

Two ownership modes:

- **ephemeral** (default): each ``map()`` call spins a scheduler up,
  runs the batch, and tears the pool down -- the campaign-CLI shape.
- **attached**: constructed with a live :class:`~repro.fabric.
  scheduler.FabricScheduler`, ``map()`` multiplexes onto it and leaves
  its lifecycle alone -- the ``repro serve`` shape.
"""

from __future__ import annotations

import os
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    TypeVar,
    Union,
)

from repro.fabric.scheduler import FabricScheduler

T = TypeVar("T")
R = TypeVar("R")


class FabricExecutor:
    """Map work over the distributed fabric (drop-in for the exp pool)."""

    def __init__(
        self,
        jobs: int = 2,
        queue_dir: Optional[Union[str, "os.PathLike[str]"]] = None,
        cache_dir: Optional[str] = None,
        stream_path: Optional[str] = None,
        sinks: Optional[List[Any]] = None,
        chaos_kill_after: Optional[int] = None,
        lease_timeout: float = 120.0,
        scheduler: Optional[FabricScheduler] = None,
    ) -> None:
        self.jobs = scheduler.jobs if scheduler is not None else jobs
        self._attached = scheduler
        self._queue_dir = queue_dir
        self._cache_dir = cache_dir
        self._stream_path = stream_path
        self._sinks = sinks
        self._chaos_kill_after = chaos_kill_after
        self._lease_timeout = lease_timeout
        #: counters of the last completed map() (ephemeral mode), for
        #: reporting without keeping the scheduler alive.
        self.last_counters: Dict[str, int] = {}

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        items = list(items)
        if not items:
            return []
        if self._attached is not None:
            return self._attached.map(fn, items)
        with FabricScheduler(
            jobs=self.jobs,
            queue_dir=self._queue_dir,
            cache_dir=self._cache_dir,
            stream_path=self._stream_path,
            sinks=self._sinks,
            chaos_kill_after=self._chaos_kill_after,
            lease_timeout=self._lease_timeout,
        ) as scheduler:
            results = scheduler.map(fn, items)
            self.last_counters = scheduler.counters_snapshot()
            return results

    def __repr__(self) -> str:
        mode = "attached" if self._attached is not None else "ephemeral"
        return f"FabricExecutor(jobs={self.jobs}, {mode})"


__all__ = ["FabricExecutor"]
