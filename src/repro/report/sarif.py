"""Shared SARIF 2.1.0 renderer.

SARIF is the one interchange format both our static tools emit (the
persistency linter and the litmus cross-validator), so the document
construction lives here rather than being copy-pasted per tool.  The
shape is the subset GitHub code scanning ingests:

- one ``run`` per document, with the tool ``driver`` carrying the full
  rule table (id, name, short description, help, default level);
- one ``result`` per diagnosis, with a physical location (artifact URI +
  start line) and a free-form ``properties`` bag for tool-specific
  context (thread / op index for lint, test / model / state for litmus).

Tools describe themselves with plain frozen dataclasses
(:class:`SarifRule`, :class:`SarifResult`); :func:`make_sarif` turns
them into the JSON document.  Levels are the three SARIF result levels
(``note`` / ``warning`` / ``error``) as strings -- each tool maps its
own severity enum onto them before reaching this module.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: the three SARIF result levels, in ascending severity.
LEVELS = ("note", "warning", "error")


@dataclass(frozen=True)
class SarifRule:
    """Static metadata for one rule of a tool (the ``rules`` entry)."""

    id: str
    name: str
    summary: str
    #: default level: ``note`` / ``warning`` / ``error``.
    level: str
    help_text: str = ""

    def __post_init__(self) -> None:
        if self.level not in LEVELS:
            raise ValueError(
                f"rule {self.id}: level {self.level!r} not in {LEVELS}"
            )


@dataclass(frozen=True)
class SarifResult:
    """One diagnosis to render as a SARIF ``result``."""

    rule_id: str
    level: str
    message: str
    #: repo-relative artifact URI (see :func:`relative_uri`).
    uri: str = "unknown"
    start_line: int = 1
    properties: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.level not in LEVELS:
            raise ValueError(
                f"result {self.rule_id}: level {self.level!r} not in {LEVELS}"
            )


def relative_uri(
    path: Optional[str], markers: Sequence[str] = ("src", "tests")
) -> str:
    """Reduce an absolute source path to a repo-relative URI.

    The path is cut at the first marker directory (``src`` by default),
    matching how the repo is laid out; unknown paths degrade to the
    file name and missing paths to ``"unknown"``.
    """
    if not path:
        return "unknown"
    p = pathlib.Path(path)
    for marker in markers:
        try:
            index = p.parts.index(marker)
        except ValueError:
            continue
        return "/".join(p.parts[index:])
    return p.name


def make_sarif(
    tool_name: str,
    tool_version: str,
    rules: Sequence[SarifRule],
    results: Sequence[SarifResult],
    information_uri: str = "https://example.invalid/repro",
) -> Dict[str, Any]:
    """Build a SARIF 2.1.0 document with one run."""
    rule_ids = {rule.id for rule in rules}
    for result in results:
        if result.rule_id not in rule_ids:
            raise ValueError(
                f"result references unregistered rule {result.rule_id!r}"
            )
    rule_entries: List[Dict[str, Any]] = [
        {
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "help": {"text": rule.help_text},
            "defaultConfiguration": {"level": rule.level},
        }
        for rule in rules
    ]
    result_entries: List[Dict[str, Any]] = [
        {
            "ruleId": result.rule_id,
            "level": result.level,
            "message": {"text": result.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": result.uri},
                        "region": {"startLine": max(1, result.start_line)},
                    }
                }
            ],
            "properties": dict(result.properties),
        }
        for result in results
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "version": tool_version,
                        "informationUri": information_uri,
                        "rules": rule_entries,
                    }
                },
                "results": result_entries,
            }
        ],
    }


def dumps(document: Dict[str, Any]) -> str:
    """Serialize a report document (SARIF or plain JSON) for output."""
    return json.dumps(document, indent=2, sort_keys=False)


__all__ = [
    "LEVELS",
    "SARIF_SCHEMA",
    "SARIF_VERSION",
    "SarifResult",
    "SarifRule",
    "dumps",
    "make_sarif",
    "relative_uri",
]
