"""`repro.report` -- shared report-rendering infrastructure.

One schema-validated SARIF 2.1.0 emission path for every static tool in
the repo: :mod:`repro.lint` (persistency linter findings) and
:mod:`repro.litmus` (operational-vs-axiomatic disagreements) both build
:class:`SarifRule` / :class:`SarifResult` values and hand them to
:func:`make_sarif`, so the document shape GitHub code scanning ingests
is produced -- and tested -- in exactly one place.
"""

from repro.report.sarif import (
    SARIF_SCHEMA,
    SARIF_VERSION,
    SarifResult,
    SarifRule,
    dumps,
    make_sarif,
    relative_uri,
)

__all__ = [
    "SARIF_SCHEMA",
    "SARIF_VERSION",
    "SarifResult",
    "SarifRule",
    "dumps",
    "make_sarif",
    "relative_uri",
]
