"""Data model for the persistency linter.

A *finding* is one static diagnosis against a workload's op stream:
which rule fired, how bad it is, where (thread / strand / op index /
cache line), and how to fix it.  Findings are plain, ordered,
JSON-friendly data so every renderer (text, JSON, SARIF) consumes the
same objects.

Severity levels map one-to-one onto SARIF result levels (``note`` /
``warning`` / ``error``); the CLI's ``--fail-on`` threshold compares
against them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


class Severity(enum.IntEnum):
    """Finding severity, ordered so thresholds can compare."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{[s.label for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Rule:
    """Static metadata for one detector (also the SARIF rule entry)."""

    id: str
    detector: str
    summary: str
    severity: Severity
    hint: str


@dataclass(frozen=True)
class Finding:
    """One diagnosis produced by a detector."""

    rule_id: str
    detector: str
    severity: Severity
    message: str
    workload: str
    thread: int
    #: strand index within the thread (0 unless NewStrand is used).
    strand: int
    #: index of the offending op in the thread's stream.
    op_index: int
    #: cache-line number the finding is about, if line-specific.
    line: Optional[int] = None
    fix_hint: str = ""

    def location(self) -> str:
        where = f"thread {self.thread}"
        if self.strand:
            where += f" strand {self.strand}"
        where += f" op {self.op_index}"
        if self.line is not None:
            where += f" line {self.line:#x}"
        return where

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "rule": self.rule_id,
            "detector": self.detector,
            "severity": self.severity.label,
            "message": self.message,
            "workload": self.workload,
            "thread": self.thread,
            "strand": self.strand,
            "op_index": self.op_index,
        }
        if self.line is not None:
            data["line"] = self.line
        if self.fix_hint:
            data["fix_hint"] = self.fix_hint
        return data


@dataclass
class LintConfig:
    """Tunable knobs for one lint run.

    The defaults define the CI gate: 4 threads, each workload's default
    ops-per-thread, seed 7.  Thresholds are documented in
    ``docs/lint.md``.
    """

    threads: int = 4
    ops_per_thread: Optional[int] = None
    seed: int = 7
    #: detectors to run; None means all registered detectors.
    detectors: Optional[List[str]] = None
    #: ignore workload-declared suppressions (surface everything).
    no_suppress: bool = False
    #: distinct dirty lines in a single epoch before PL005 flags it.
    max_epoch_lines: int = 24
    #: a line stored in this many *consecutive* epochs of one strand is
    #: flagged as a self-dependency chain (PL005).  The default of 5
    #: clears legitimate short bursts -- e.g. a skip-list predecessor
    #: publishing one pointer per level for MAX_LEVEL=4 levels -- while
    #: still catching sustained chains.
    self_dep_min_run: int = 5
    #: single-line stores up to this size count as atomic publishes: a
    #: PL004 race needs at least one participant *wider* than this.
    atomic_publish_bytes: int = 8
    #: safety valve for dry expansion of a misbehaving generator.
    max_ops_per_thread: int = 1_000_000


@dataclass
class LintReport:
    """All findings for one workload under one :class:`LintConfig`."""

    workload: str
    findings: List[Finding] = field(default_factory=list)
    #: findings matched by a workload-declared suppression, kept for
    #: transparency: (finding, reason).
    suppressed: List[Tuple[Finding, str]] = field(default_factory=list)
    ops_scanned: int = 0
    threads: int = 0

    def worst(self) -> Optional[Severity]:
        return max((f.severity for f in self.findings), default=None)

    def ok(self, fail_on: Severity = Severity.WARNING) -> bool:
        return all(f.severity < fail_on for f in self.findings)

    def by_detector(self, detector: str) -> List[Finding]:
        return [f for f in self.findings if f.detector == detector]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "threads": self.threads,
            "ops_scanned": self.ops_scanned,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [
                {**f.to_dict(), "suppressed_reason": reason}
                for f, reason in self.suppressed
            ],
        }


class LintError(Exception):
    """A workload could not be expanded or linted."""


__all__ = [
    "Finding",
    "LintConfig",
    "LintError",
    "LintReport",
    "Rule",
    "Severity",
]
