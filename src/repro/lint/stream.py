"""Op-stream extraction and annotation for the linter.

The linter never touches the simulator engine: a workload's thread
programs are plain generators of ops, so a *dry expansion* -- pulling
every generator to exhaustion against a fresh allocator -- yields the
exact per-thread op streams the machine would execute.  (Workload state
machines advance as their generators are pulled; no cycle-accurate
machinery is involved.)  A recorded :class:`repro.trace.Trace` can be
linted the same way.

Each op is annotated with everything the detectors need: its index, the
strand it belongs to, the lock set held when it executes, and the epoch
(persist-barrier interval) it falls in.  Epoch numbering matches the
simulator's convention: timestamps start at 1 and both ``OFence`` and
``DFence`` close the current epoch; ``NewStrand`` starts a new strand
whose first epoch has no implicit intra-thread predecessor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from repro.core.api import (
    Acquire,
    DFence,
    NewStrand,
    OFence,
    Op,
    PMAllocator,
    Release,
    Store,
)
from repro.lint.model import LintConfig, LintError
from repro.workloads.base import LINE, Workload

#: (first_line, last_line) inclusive cache-line span of a store.
LineSpan = Tuple[int, int]


def store_lines(store: Store, line_bytes: int = LINE) -> List[int]:
    """Cache-line numbers a store dirties."""
    first = store.addr // line_bytes
    last = (store.addr + max(store.size, 1) - 1) // line_bytes
    return list(range(first, last + 1))


@dataclass(frozen=True)
class AnnotatedOp:
    """One op with its static execution context."""

    index: int
    op: Op
    strand: int
    #: per-strand epoch timestamp (starts at 1, bumped by each fence).
    epoch_ts: int
    #: global per-thread epoch ordinal (does not reset across strands).
    epoch_ordinal: int
    locks_held: FrozenSet[int]


@dataclass
class ThreadStream:
    """One thread's annotated op stream."""

    thread: int
    ops: List[AnnotatedOp] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ops)


@dataclass
class OpStream:
    """A workload's full per-thread op streams, ready to lint."""

    workload: str
    threads: List[ThreadStream]
    #: source file of the workload class, for SARIF locations.
    source_file: Optional[str] = None
    source_line: Optional[int] = None

    def num_ops(self) -> int:
        return sum(len(t) for t in self.threads)


def _annotate(thread: int, ops: List[Op]) -> ThreadStream:
    stream = ThreadStream(thread=thread)
    locks: List[int] = []
    strand = 0
    epoch_ts = 1
    epoch_ordinal = 0
    for index, op in enumerate(ops):
        if isinstance(op, Acquire):
            locks.append(op.lock)
        stream.ops.append(
            AnnotatedOp(
                index=index,
                op=op,
                strand=strand,
                epoch_ts=epoch_ts,
                epoch_ordinal=epoch_ordinal,
                locks_held=frozenset(locks),
            )
        )
        if isinstance(op, Release):
            if op.lock in locks:
                locks.remove(op.lock)
        elif isinstance(op, (OFence, DFence)):
            epoch_ts += 1
            epoch_ordinal += 1
        elif isinstance(op, NewStrand):
            strand += 1
            epoch_ts += 1
            epoch_ordinal += 1
    return stream


def expand_workload(
    workload: Workload,
    config: Optional[LintConfig] = None,
) -> OpStream:
    """Dry-expand a workload's programs into annotated op streams."""
    config = config or LintConfig()
    heap = PMAllocator()
    try:
        programs = workload.programs(heap, config.threads)
    except Exception as exc:
        raise LintError(
            f"workload {workload.name!r} failed to build programs: {exc}"
        ) from exc
    threads: List[ThreadStream] = []
    for thread, program in enumerate(programs):
        ops: List[Op] = []
        for op in program:
            ops.append(op)
            if len(ops) > config.max_ops_per_thread:
                raise LintError(
                    f"workload {workload.name!r} thread {thread} exceeded "
                    f"{config.max_ops_per_thread} ops during dry expansion"
                )
        threads.append(_annotate(thread, ops))
    source_file, source_line = _source_of(workload)
    return OpStream(
        workload=workload.name,
        threads=threads,
        source_file=source_file,
        source_line=source_line,
    )


def stream_from_ops(
    name: str, per_thread_ops: List[List[Op]]
) -> OpStream:
    """Build a lintable stream from raw per-thread op lists (e.g. a
    recorded or loaded :class:`repro.trace.Trace`)."""
    return OpStream(
        workload=name,
        threads=[
            _annotate(thread, list(ops))
            for thread, ops in enumerate(per_thread_ops)
        ],
    )


def _source_of(
    workload: Workload,
) -> Tuple[Optional[str], Optional[int]]:
    import inspect

    try:
        path = inspect.getsourcefile(type(workload))
        _, line = inspect.getsourcelines(type(workload))
    except (OSError, TypeError):
        return None, None
    return path, line


__all__ = [
    "AnnotatedOp",
    "OpStream",
    "ThreadStream",
    "expand_workload",
    "store_lines",
    "stream_from_ops",
]
