"""Orchestration: lint one workload, a trace, or the whole stock suite.

Suppressions: a workload class may declare

.. code-block:: python

    lint_suppressions = {
        "unfenced-release": "ATLAS undo-logging makes the release-"
        "published store recoverable; see docs/lint.md",
    }

Matching findings are moved to :attr:`LintReport.suppressed` (with the
reason) instead of failing the gate.  ``LintConfig(no_suppress=True)``
disables the mechanism so suppressed findings surface again -- a
suppression hides a finding from the gate, never from inspection.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.core.api import Op
from repro.lint.detectors import DETECTORS, UNUSED_SUPPRESSION
from repro.lint.model import Finding, LintConfig, LintError, LintReport
from repro.lint.stream import OpStream, expand_workload, stream_from_ops
from repro.workloads.base import Workload
from repro.workloads.registry import MICROBENCHES, SUITE, get_workload


def stock_workload_names() -> List[str]:
    """Every stock workload ``repro lint --all`` gates on: the Table III
    suite plus the microbenchmarks (lint fixtures are excluded)."""
    return [cls.name for cls in SUITE] + [cls.name for cls in MICROBENCHES]


def lint_stream(
    stream: OpStream,
    config: Optional[LintConfig] = None,
    suppressions: Optional[Mapping[str, str]] = None,
) -> LintReport:
    """Run the detector pipeline over an already-expanded stream."""
    config = config or LintConfig()
    enabled = config.detectors or list(DETECTORS)
    unknown = sorted(set(enabled) - set(DETECTORS))
    if unknown:
        raise LintError(
            f"unknown detector(s) {unknown}; available: {sorted(DETECTORS)}"
        )
    suppressions = dict(suppressions or {})
    report = LintReport(
        workload=stream.workload,
        threads=len(stream.threads),
        ops_scanned=stream.num_ops(),
    )
    for name in DETECTORS:
        if name not in enabled:
            continue
        for finding in DETECTORS[name](stream, config):
            reason = suppressions.get(name)
            if reason is not None and not config.no_suppress:
                report.suppressed.append((finding, reason))
            else:
                report.findings.append(finding)
    # PL000: a suppression whose detector ran but produced zero findings
    # (kept *or* suppressed) is stale and would otherwise rot silently.
    # Suppressions for detectors that did not run this pass are not
    # judged -- they had no chance to match.
    produced = {f.detector for f in report.findings}
    produced.update(f.detector for f, _ in report.suppressed)
    for name in sorted(suppressions):
        if name not in DETECTORS or name not in enabled:
            continue
        if name not in produced:
            report.findings.append(
                Finding(
                    rule_id=UNUSED_SUPPRESSION.id,
                    detector=UNUSED_SUPPRESSION.detector,
                    severity=UNUSED_SUPPRESSION.severity,
                    message=(
                        f"lint_suppressions entry for {name!r} matched "
                        f"no findings; delete it or fix the detector "
                        f"name"
                    ),
                    workload=stream.workload,
                    thread=0,
                    strand=0,
                    op_index=0,
                    fix_hint=UNUSED_SUPPRESSION.hint,
                )
            )
    return report


def lint_workload(
    workload: Union[str, Workload],
    config: Optional[LintConfig] = None,
) -> LintReport:
    """Expand one workload (by name or instance) and lint it."""
    config = config or LintConfig()
    if isinstance(workload, str):
        workload = get_workload(
            workload,
            ops_per_thread=config.ops_per_thread,
            seed=config.seed,
        )
    stream = expand_workload(workload, config)
    return lint_stream(stream, config, workload.lint_suppressions)


def lint_trace(
    name: str,
    per_thread_ops: List[List[Op]],
    config: Optional[LintConfig] = None,
) -> LintReport:
    """Lint raw per-thread op lists (e.g. ``Trace.threads``)."""
    stream = stream_from_ops(name, per_thread_ops)
    return lint_stream(stream, config)


def lint_all(
    names: Optional[List[str]] = None,
    config: Optional[LintConfig] = None,
) -> Tuple[List[LintReport], Dict[str, Tuple[Optional[str], Optional[int]]]]:
    """Lint a list of workloads (default: the stock gate set).

    Returns the reports plus a workload -> (source file, line) map for
    SARIF location rendering.
    """
    config = config or LintConfig()
    names = names if names is not None else stock_workload_names()
    reports: List[LintReport] = []
    sources: Dict[str, Tuple[Optional[str], Optional[int]]] = {}
    for name in names:
        workload = get_workload(
            name, ops_per_thread=config.ops_per_thread, seed=config.seed
        )
        stream = expand_workload(workload, config)
        sources[name] = (stream.source_file, stream.source_line)
        reports.append(lint_stream(stream, config, workload.lint_suppressions))
    return reports, sources


def all_findings(reports: List[LintReport]) -> List[Finding]:
    return [f for report in reports for f in report.findings]


__all__ = [
    "all_findings",
    "lint_all",
    "lint_stream",
    "lint_trace",
    "lint_workload",
    "stock_workload_names",
]
