"""Renderers for lint reports: human text, JSON, and SARIF 2.1.0.

SARIF results use the workload class's source file as the artifact
location (the op stream has no source positions of its own), carry the
thread / strand / op index / cache line in ``properties``, and map
severities onto SARIF levels one-to-one.  Document construction is
delegated to the shared :mod:`repro.report` renderer (the same path the
litmus cross-validator emits through), so the schema shape GitHub code
scanning ingests lives in exactly one place.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.lint.detectors import RULES
from repro.lint.model import LintReport, Severity
from repro.report import (
    SARIF_SCHEMA,
    SARIF_VERSION,
    SarifResult,
    SarifRule,
    dumps,
    make_sarif,
    relative_uri,
)

TOOL_NAME = "repro-lint"
TOOL_VERSION = "1.0.0"

_LEVELS = {
    Severity.NOTE: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


def _relative_uri(path: Optional[str]) -> str:
    return relative_uri(path, markers=("src",))


def to_sarif(
    reports: List[LintReport],
    sources: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build a SARIF 2.1.0 document for a set of reports.

    ``sources`` maps workload name -> (source_file, source_line); the
    runner fills it from the expanded streams.
    """
    sources = sources or {}
    rules = [
        SarifRule(
            id=rule.id,
            name=rule.detector,
            summary=rule.summary,
            level=_LEVELS[rule.severity],
            help_text=rule.hint,
        )
        for rule in RULES.values()
    ]
    results: List[SarifResult] = []
    for report in reports:
        source: Tuple[Optional[str], Optional[int]] = sources.get(
            report.workload, (None, None)
        )
        source_file, source_line = source
        for finding in report.findings:
            properties: Dict[str, Any] = {
                "workload": finding.workload,
                "detector": finding.detector,
                "thread": finding.thread,
                "strand": finding.strand,
                "opIndex": finding.op_index,
            }
            if finding.line is not None:
                properties["cacheLine"] = f"{finding.line:#x}"
            if finding.fix_hint:
                properties["fixHint"] = finding.fix_hint
            results.append(
                SarifResult(
                    rule_id=finding.rule_id,
                    level=_LEVELS[finding.severity],
                    message=f"[{finding.workload}] {finding.message}",
                    uri=_relative_uri(source_file),
                    start_line=source_line or 1,
                    properties=properties,
                )
            )
    return make_sarif(TOOL_NAME, TOOL_VERSION, rules, results)


def to_json(reports: List[LintReport]) -> Dict[str, Any]:
    """Plain-JSON report document (stable keys, machine-readable)."""
    return {
        "tool": TOOL_NAME,
        "version": TOOL_VERSION,
        "reports": [report.to_dict() for report in reports],
        "total_findings": sum(len(r.findings) for r in reports),
        "total_suppressed": sum(len(r.suppressed) for r in reports),
    }


def render_text(reports: List[LintReport], verbose: bool = False) -> str:
    """Human-readable summary, one block per workload."""
    lines: List[str] = []
    total = 0
    suppressed_total = 0
    for report in reports:
        total += len(report.findings)
        suppressed_total += len(report.suppressed)
        status = "ok" if not report.findings else (
            f"{len(report.findings)} finding(s)"
        )
        extra = (
            f", {len(report.suppressed)} suppressed"
            if report.suppressed
            else ""
        )
        lines.append(
            f"{report.workload}: {status}{extra} "
            f"({report.threads} threads, {report.ops_scanned} ops)"
        )
        for finding in report.findings:
            lines.append(
                f"  [{finding.severity.label.upper()}] "
                f"{finding.rule_id} {finding.detector}: "
                f"{finding.message} ({finding.location()})"
            )
            if finding.fix_hint:
                lines.append(f"      hint: {finding.fix_hint}")
        if verbose:
            for finding, reason in report.suppressed:
                lines.append(
                    f"  [suppressed] {finding.rule_id} "
                    f"{finding.detector}: {finding.message} "
                    f"({finding.location()})"
                )
                lines.append(f"      reason: {reason}")
    lines.append(
        f"total: {total} finding(s), {suppressed_total} suppressed, "
        f"{len(reports)} workload(s) linted"
    )
    return "\n".join(lines)


__all__ = [
    "SARIF_SCHEMA",
    "SARIF_VERSION",
    "TOOL_NAME",
    "dumps",
    "render_text",
    "to_json",
    "to_sarif",
]
