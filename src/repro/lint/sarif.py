"""Renderers for lint reports: human text, JSON, and SARIF 2.1.0.

SARIF results use the workload class's source file as the artifact
location (the op stream has no source positions of its own), carry the
thread / strand / op index / cache line in ``properties``, and map
severities onto SARIF levels one-to-one.  The output validates against
the SARIF 2.1.0 schema shape GitHub code scanning ingests.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional

from repro.lint.detectors import RULES
from repro.lint.model import LintReport, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"
TOOL_VERSION = "1.0.0"

_LEVELS = {
    Severity.NOTE: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


def _relative_uri(path: Optional[str]) -> str:
    if not path:
        return "unknown"
    p = pathlib.Path(path)
    for marker in ("src",):
        try:
            index = p.parts.index(marker)
        except ValueError:
            continue
        return "/".join(p.parts[index:])
    return p.name


def to_sarif(
    reports: List[LintReport],
    sources: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build a SARIF 2.1.0 document for a set of reports.

    ``sources`` maps workload name -> (source_file, source_line); the
    runner fills it from the expanded streams.
    """
    sources = sources or {}
    rules = [
        {
            "id": rule.id,
            "name": rule.detector,
            "shortDescription": {"text": rule.summary},
            "help": {"text": rule.hint},
            "defaultConfiguration": {"level": _LEVELS[rule.severity]},
        }
        for rule in RULES.values()
    ]
    results: List[Dict[str, Any]] = []
    for report in reports:
        source_file, source_line = sources.get(
            report.workload, (None, None)
        )
        for finding in report.findings:
            properties: Dict[str, Any] = {
                "workload": finding.workload,
                "detector": finding.detector,
                "thread": finding.thread,
                "strand": finding.strand,
                "opIndex": finding.op_index,
            }
            if finding.line is not None:
                properties["cacheLine"] = f"{finding.line:#x}"
            if finding.fix_hint:
                properties["fixHint"] = finding.fix_hint
            results.append(
                {
                    "ruleId": finding.rule_id,
                    "level": _LEVELS[finding.severity],
                    "message": {
                        "text": f"[{finding.workload}] {finding.message}"
                    },
                    "locations": [
                        {
                            "physicalLocation": {
                                "artifactLocation": {
                                    "uri": _relative_uri(source_file),
                                },
                                "region": {
                                    "startLine": source_line or 1,
                                },
                            }
                        }
                    ],
                    "properties": properties,
                }
            )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": TOOL_VERSION,
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def to_json(reports: List[LintReport]) -> Dict[str, Any]:
    """Plain-JSON report document (stable keys, machine-readable)."""
    return {
        "tool": TOOL_NAME,
        "version": TOOL_VERSION,
        "reports": [report.to_dict() for report in reports],
        "total_findings": sum(len(r.findings) for r in reports),
        "total_suppressed": sum(len(r.suppressed) for r in reports),
    }


def render_text(reports: List[LintReport], verbose: bool = False) -> str:
    """Human-readable summary, one block per workload."""
    lines: List[str] = []
    total = 0
    suppressed_total = 0
    for report in reports:
        total += len(report.findings)
        suppressed_total += len(report.suppressed)
        status = "ok" if not report.findings else (
            f"{len(report.findings)} finding(s)"
        )
        extra = (
            f", {len(report.suppressed)} suppressed"
            if report.suppressed
            else ""
        )
        lines.append(
            f"{report.workload}: {status}{extra} "
            f"({report.threads} threads, {report.ops_scanned} ops)"
        )
        for finding in report.findings:
            lines.append(
                f"  [{finding.severity.label.upper()}] "
                f"{finding.rule_id} {finding.detector}: "
                f"{finding.message} ({finding.location()})"
            )
            if finding.fix_hint:
                lines.append(f"      hint: {finding.fix_hint}")
        if verbose:
            for finding, reason in report.suppressed:
                lines.append(
                    f"  [suppressed] {finding.rule_id} "
                    f"{finding.detector}: {finding.message} "
                    f"({finding.location()})"
                )
                lines.append(f"      reason: {reason}")
    lines.append(
        f"total: {total} finding(s), {suppressed_total} suppressed, "
        f"{len(reports)} workload(s) linted"
    )
    return "\n".join(lines)


def dumps(document: Dict[str, Any]) -> str:
    return json.dumps(document, indent=2, sort_keys=False)


__all__ = [
    "SARIF_SCHEMA",
    "SARIF_VERSION",
    "TOOL_NAME",
    "dumps",
    "render_text",
    "to_json",
    "to_sarif",
]
