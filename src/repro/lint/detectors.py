"""The detector pipeline: five static persistency checks.

Every detector is a pure function from an annotated
:class:`~repro.lint.stream.OpStream` (plus the :class:`LintConfig`
thresholds) to findings.  New detectors register with
:func:`register_detector`; the CLI and runner iterate ``DETECTORS`` in
registration order.

The checks, and the bug class each targets:

- ``unfenced-release`` (PL001, error) -- a store published to other
  threads by a ``Release`` with no ``OFence``/``DFence`` between the
  store and the release: the next acquirer can consume data that is not
  persist-ordered before its own persists.
- ``unpersisted-tail`` (PL002, warning) -- dirty stores with no
  ``DFence`` before the thread's stream ends: the "commit" the workload
  reports was never made durable.
- ``redundant-fence`` (PL003, note) -- a fence whose pending persist
  set is empty; pure overhead on fence-priced hardware.
- ``persist-race`` (PL004, error) -- Eraser-style lockset analysis:
  stores to the same cache line from two strands whose lock sets share
  no common lock (and no program-order happens-before).  Single-line
  stores no wider than ``atomic_publish_bytes`` are treated as atomic
  publishes (the standard lock-free PM idiom); a race needs at least one
  wider participant.
- ``epoch-shape`` (PL005, note) -- anti-patterns over the epoch
  dependency structure of :mod:`repro.verify.dag`: oversized epochs
  (more dirty lines than a persist buffer can hold open) and
  self-dependency chains (the same line re-dirtied in consecutive
  epochs, defeating coalescing and serializing flushes).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.core.api import (
    CAS,
    Acquire,
    DFence,
    NewStrand,
    OFence,
    Release,
    Store,
)
from repro.core.epoch import EpochLog
from repro.lint.model import Finding, LintConfig, Rule, Severity
from repro.lint.stream import AnnotatedOp, OpStream, store_lines
from repro.verify.dag import build_dag

Detector = Callable[[OpStream, LintConfig], Iterator[Finding]]

RULES: Dict[str, Rule] = {}
DETECTORS: Dict[str, Detector] = {}


def register_detector(rule: Rule, func: Detector) -> Detector:
    """Register a detector under its rule metadata."""
    if rule.detector in DETECTORS:
        raise ValueError(f"detector {rule.detector!r} already registered")
    RULES[rule.detector] = rule
    DETECTORS[rule.detector] = func
    return func


def _finding(
    rule: Rule,
    stream: OpStream,
    aop: AnnotatedOp,
    thread: int,
    message: str,
    line: Optional[int] = None,
    hint: Optional[str] = None,
) -> Finding:
    return Finding(
        rule_id=rule.id,
        detector=rule.detector,
        severity=rule.severity,
        message=message,
        workload=stream.workload,
        thread=thread,
        strand=aop.strand,
        op_index=aop.index,
        line=line,
        fix_hint=hint if hint is not None else rule.hint,
    )


# ---------------------------------------------------------------------------
# PL001 unfenced-release
# ---------------------------------------------------------------------------

_UNFENCED_RELEASE = Rule(
    id="PL001",
    detector="unfenced-release",
    summary="store published by a lock release without persist ordering",
    severity=Severity.ERROR,
    hint="insert an OFence() (or DFence()) between the last store and "
    "the Release so acquirers only see persist-ordered data",
)


def detect_unfenced_release(
    stream: OpStream, config: LintConfig
) -> Iterator[Finding]:
    for thread_stream in stream.threads:
        unfenced: List[AnnotatedOp] = []
        acquire_index: Dict[int, int] = {}
        for aop in thread_stream.ops:
            op = aop.op
            if isinstance(op, Store):
                unfenced.append(aop)
            elif isinstance(op, (OFence, DFence)):
                unfenced.clear()
            elif isinstance(op, Acquire):
                acquire_index[op.lock] = aop.index
            elif isinstance(op, Release):
                start = acquire_index.get(op.lock, -1)
                published = [a for a in unfenced if a.index > start]
                if published:
                    first = published[0]
                    store = first.op
                    assert isinstance(store, Store)
                    yield _finding(
                        _UNFENCED_RELEASE,
                        stream,
                        aop,
                        thread_stream.thread,
                        f"Release({op.lock:#x}) publishes "
                        f"{len(published)} store(s) with no ordering "
                        f"fence since op {first.index} "
                        f"(addr {store.addr:#x})",
                        line=store_lines(store)[0],
                    )


register_detector(_UNFENCED_RELEASE, detect_unfenced_release)


# ---------------------------------------------------------------------------
# PL002 unpersisted-tail
# ---------------------------------------------------------------------------

_UNPERSISTED_TAIL = Rule(
    id="PL002",
    detector="unpersisted-tail",
    summary="dirty stores with no durability fence before workload end",
    severity=Severity.WARNING,
    hint="end the thread program with a DFence() so the final updates "
    "are durable at the reported commit point",
)


def detect_unpersisted_tail(
    stream: OpStream, config: LintConfig
) -> Iterator[Finding]:
    for thread_stream in stream.threads:
        dirty: List[AnnotatedOp] = []
        for aop in thread_stream.ops:
            if isinstance(aop.op, Store):
                dirty.append(aop)
            elif isinstance(aop.op, DFence):
                dirty.clear()
        if dirty:
            last = dirty[-1]
            store = last.op
            assert isinstance(store, Store)
            yield _finding(
                _UNPERSISTED_TAIL,
                stream,
                last,
                thread_stream.thread,
                f"{len(dirty)} store(s) after the last DFence are never "
                f"made durable before the workload ends "
                f"(last: op {last.index}, addr {store.addr:#x})",
                line=store_lines(store)[0],
            )


register_detector(_UNPERSISTED_TAIL, detect_unpersisted_tail)


# ---------------------------------------------------------------------------
# PL003 redundant-fence
# ---------------------------------------------------------------------------

_REDUNDANT_FENCE = Rule(
    id="PL003",
    detector="redundant-fence",
    summary="fence with an empty pending persist set",
    severity=Severity.NOTE,
    hint="drop the fence, or move it after the stores it is meant to "
    "order; fences are priced even when they order nothing",
)


def detect_redundant_fence(
    stream: OpStream, config: LintConfig
) -> Iterator[Finding]:
    for thread_stream in stream.threads:
        stores_since_fence = 0
        stores_since_dfence = 0
        for aop in thread_stream.ops:
            op = aop.op
            if isinstance(op, Store):
                stores_since_fence += 1
                stores_since_dfence += 1
            elif isinstance(op, OFence):
                if stores_since_fence == 0:
                    yield _finding(
                        _REDUNDANT_FENCE,
                        stream,
                        aop,
                        thread_stream.thread,
                        f"OFence at op {aop.index} orders nothing: no "
                        f"store since the previous persist barrier",
                    )
                stores_since_fence = 0
            elif isinstance(op, DFence):
                if stores_since_dfence == 0:
                    yield _finding(
                        _REDUNDANT_FENCE,
                        stream,
                        aop,
                        thread_stream.thread,
                        f"DFence at op {aop.index} drains nothing: no "
                        f"store since the previous durability fence",
                    )
                stores_since_fence = 0
                stores_since_dfence = 0
            elif isinstance(op, NewStrand):
                # a new strand is unordered w.r.t. earlier persists, so
                # the ordering-pending set resets with it.
                stores_since_fence = 0


register_detector(_REDUNDANT_FENCE, detect_redundant_fence)


# ---------------------------------------------------------------------------
# PL004 persist-race
# ---------------------------------------------------------------------------

_PERSIST_RACE = Rule(
    id="PL004",
    detector="persist-race",
    summary="same-line stores from two strands with no common lock",
    severity=Severity.ERROR,
    hint="protect both stores with a common lock (or make every racy "
    "access a single-word atomic publish) so crash recovery sees a "
    "well-defined per-line order",
)


def detect_persist_race(
    stream: OpStream, config: LintConfig
) -> Iterator[Finding]:
    # line -> distinct (thread, lockset, atomic) access shapes, with a
    # representative op for each shape.
    shapes: Dict[
        int, Dict[Tuple[int, FrozenSet[int], bool], AnnotatedOp]
    ] = {}
    for thread_stream in stream.threads:
        for aop in thread_stream.ops:
            op = aop.op
            if not isinstance(op, Store):
                continue
            lines = store_lines(op)
            atomic = (
                op.size <= config.atomic_publish_bytes and len(lines) == 1
            )
            key = (thread_stream.thread, aop.locks_held, atomic)
            for line in lines:
                shapes.setdefault(line, {}).setdefault(key, aop)

    for line in sorted(shapes):
        accesses = list(shapes[line].items())
        reported = False
        for i, ((t_a, locks_a, atomic_a), aop_a) in enumerate(accesses):
            if reported:
                break
            for (t_b, locks_b, atomic_b), aop_b in accesses[i + 1:]:
                if t_a == t_b:
                    continue  # program order is a happens-before
                if locks_a & locks_b:
                    continue  # a common lock serializes the pair
                if atomic_a and atomic_b:
                    continue  # word-sized atomic publishes
                store_a = aop_a.op
                assert isinstance(store_a, Store)
                yield _finding(
                    _PERSIST_RACE,
                    stream,
                    aop_a,
                    t_a,
                    f"line {line:#x} is stored by thread {t_a} "
                    f"(op {aop_a.index}, locks "
                    f"{sorted(locks_a) or 'none'}) and thread {t_b} "
                    f"(op {aop_b.index}, locks "
                    f"{sorted(locks_b) or 'none'}) with no common lock "
                    f"and no happens-before",
                    line=line,
                )
                reported = True
                break


register_detector(_PERSIST_RACE, detect_persist_race)


# ---------------------------------------------------------------------------
# PL005 epoch-shape
# ---------------------------------------------------------------------------

_EPOCH_SHAPE = Rule(
    id="PL005",
    detector="epoch-shape",
    summary="oversized epoch or self-dependency chain",
    severity=Severity.NOTE,
    hint="split oversized epochs with an OFence, and batch re-writes of "
    "a hot line inside one epoch so flushes can coalesce",
)


def detect_epoch_shape(
    stream: OpStream, config: LintConfig
) -> Iterator[Finding]:
    # Build the static intra-thread epoch structure as an EpochLog and
    # feed it through repro.verify.dag, exactly as the post-crash
    # checker would: the DAG gives us the per-strand epoch chains.
    log = EpochLog()
    write_id = 0
    #: (thread, epoch_ts) -> dirty line set
    epoch_lines: Dict[Tuple[int, int], Set[int]] = {}
    #: (thread, epoch_ts) -> first store op of the epoch
    epoch_anchor: Dict[Tuple[int, int], AnnotatedOp] = {}
    for thread_stream in stream.threads:
        prev_strand = 0
        for aop in thread_stream.ops:
            if aop.strand != prev_strand:
                log.record_strand_start(thread_stream.thread, aop.epoch_ts)
                prev_strand = aop.strand
            if not isinstance(aop.op, Store):
                continue
            key = (thread_stream.thread, aop.epoch_ts)
            epoch_anchor.setdefault(key, aop)
            lines = epoch_lines.setdefault(key, set())
            for line in store_lines(aop.op):
                write_id += 1
                log.record_write(
                    write_id, line, thread_stream.thread, aop.epoch_ts
                )
                lines.add(line)

    dag = build_dag(log)
    if not dag.is_acyclic():  # unreachable for static streams; keep the
        # Lemma 0.1 check wired so trace-driven inputs are covered too.
        for thread_stream in stream.threads:
            if thread_stream.ops:
                yield _finding(
                    _EPOCH_SHAPE,
                    stream,
                    thread_stream.ops[0],
                    thread_stream.thread,
                    "epoch dependency graph has a cycle",
                )
        return

    # (a) oversized epochs.
    for key in sorted(epoch_lines):
        lines = epoch_lines[key]
        if len(lines) > config.max_epoch_lines:
            anchor = epoch_anchor[key]
            yield _finding(
                _EPOCH_SHAPE,
                stream,
                anchor,
                key[0],
                f"epoch {key} dirties {len(lines)} cache lines "
                f"(threshold {config.max_epoch_lines}): a single "
                f"crash window loses all of them and the persist "
                f"buffer cannot hold the epoch open",
                line=min(lines),
            )

    # (b) self-dependency chains, walked along the DAG's intra-thread
    # successor edges (strand starts break the chain).
    for thread_stream in stream.threads:
        core = thread_stream.thread
        max_ts = log.max_ts.get(core, 0)
        flagged: Set[int] = set()
        run: Dict[int, int] = {}  # line -> run length ending here
        for ts in range(1, max_ts + 1):
            lines = epoch_lines.get((core, ts), set())
            chained = ts > 1 and (core, ts) not in log.strand_starts
            new_run: Dict[int, int] = {}
            for line in lines:
                length = run.get(line, 0) + 1 if chained else 1
                new_run[line] = length
                if (
                    length == config.self_dep_min_run
                    and line not in flagged
                ):
                    flagged.add(line)
                    anchor = epoch_anchor[(core, ts)]
                    yield _finding(
                        _EPOCH_SHAPE,
                        stream,
                        anchor,
                        core,
                        f"line {line:#x} is re-dirtied in at least "
                        f"{length} consecutive epochs (ending at epoch "
                        f"{ts} of thread {core}): each epoch's flush "
                        f"of the line is immediately invalidated by "
                        f"the next",
                        line=line,
                    )
            run = new_run


register_detector(_EPOCH_SHAPE, detect_epoch_shape)


# ---------------------------------------------------------------------------
# PL006 cas-publish
# ---------------------------------------------------------------------------

_CAS_PUBLISH = Rule(
    id="PL006",
    detector="cas-publish",
    summary="CAS publishes data that is not persist-ordered before it",
    severity=Severity.ERROR,
    hint="flush the node's lines and fence (OFence or DFence) before "
    "the CAS that links it into the persistent structure",
)


def detect_cas_publish(
    stream: OpStream, config: LintConfig
) -> Iterator[Finding]:
    """A CAS is the lock-free publish point: once the swapped-in pointer
    persists, recovery follows it.  Everything the published node holds
    must therefore be persist-ordered *before* the CAS -- i.e. every
    store to another line since the last fence is a dangling persist the
    CAS may overtake on its way to media."""
    for thread_stream in stream.threads:
        pending: List[AnnotatedOp] = []
        for aop in thread_stream.ops:
            op = aop.op
            if isinstance(op, CAS):
                cas_lines = set(store_lines(op))
                payload = [
                    a
                    for a in pending
                    if not set(store_lines(a.op)).issubset(cas_lines)  # type: ignore[arg-type]
                ]
                if payload:
                    first = payload[0]
                    store = first.op
                    assert isinstance(store, Store)
                    yield _finding(
                        _CAS_PUBLISH,
                        stream,
                        aop,
                        thread_stream.thread,
                        f"CAS({op.addr:#x}) publishes {len(payload)} "
                        f"store(s) with no ordering fence since op "
                        f"{first.index} (addr {store.addr:#x}): "
                        f"recovery can see the new pointer before the "
                        f"node it points to",
                        line=store_lines(op)[0],
                    )
                pending.append(aop)
            elif isinstance(op, Store):
                pending.append(aop)
            elif isinstance(op, (OFence, DFence)):
                pending.clear()
            elif isinstance(op, NewStrand):
                # a CAS cannot order earlier-strand persists at all;
                # cross-strand conflicts are SPA / PL004 territory, so
                # the pending set resets with the strand.
                pending.clear()


register_detector(_CAS_PUBLISH, detect_cas_publish)


# ---------------------------------------------------------------------------
# PL000 unused-suppression (no detector function: the runner emits it
# after the pipeline, once it knows which suppressions matched).
# ---------------------------------------------------------------------------

UNUSED_SUPPRESSION = Rule(
    id="PL000",
    detector="unused-suppression",
    summary="declared lint suppression matched zero findings",
    severity=Severity.NOTE,
    hint="delete the stale lint_suppressions entry (or fix the detector "
    "name) so the suppression list stays an honest record of accepted "
    "findings",
)

RULES[UNUSED_SUPPRESSION.detector] = UNUSED_SUPPRESSION


__all__ = [
    "DETECTORS",
    "Detector",
    "RULES",
    "UNUSED_SUPPRESSION",
    "detect_cas_publish",
    "detect_epoch_shape",
    "detect_persist_race",
    "detect_redundant_fence",
    "detect_unfenced_release",
    "detect_unpersisted_tail",
    "register_detector",
]
