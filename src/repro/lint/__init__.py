"""``repro.lint``: static persistency analysis over workload op streams.

The linter catches persist-ordering bugs *before any cycle is
simulated*: it dry-expands a workload's thread programs (or consumes a
recorded trace) and runs a pluggable detector pipeline over the
annotated op streams.  See ``docs/lint.md`` for the detector catalogue,
the suppression mechanism, and SARIF usage; ``repro lint`` is the CLI
entry point.

.. code-block:: python

    from repro.lint import LintConfig, lint_workload

    report = lint_workload("queue", LintConfig(threads=4))
    assert not report.findings, report.findings
"""

from repro.lint.detectors import DETECTORS, RULES, register_detector
from repro.lint.model import (
    Finding,
    LintConfig,
    LintError,
    LintReport,
    Rule,
    Severity,
)
from repro.lint.runner import (
    lint_all,
    lint_stream,
    lint_trace,
    lint_workload,
    stock_workload_names,
)
from repro.lint.sarif import render_text, to_json, to_sarif
from repro.lint.stream import OpStream, expand_workload, stream_from_ops

__all__ = [
    "DETECTORS",
    "Finding",
    "LintConfig",
    "LintError",
    "LintReport",
    "OpStream",
    "RULES",
    "Rule",
    "Severity",
    "expand_workload",
    "lint_all",
    "lint_stream",
    "lint_trace",
    "lint_workload",
    "register_detector",
    "render_text",
    "stock_workload_names",
    "stream_from_ops",
    "to_json",
    "to_sarif",
]
