"""A recoverable append-only log.

Layout: ``capacity`` fixed-size entry slots, one cache line each.  Every
entry carries its sequence number in the payload, so recovery needs no
header: scan slots in order and stop at the first slot whose surviving
payload is missing or stale.

The crash guarantee rests purely on *ordering*: appends are separated by
an ofence, so entry ``i+1`` must never become durable unless entry ``i``
did.  On ordering-preserving hardware a crash therefore loses at most a
suffix; the recovery procedure verifies exactly that and reports any
*hole* (a missing entry followed by a surviving one) -- holes are what
broken speculation looks like, and the tests show the ``ASAP_NO_UNDO``
ablation producing them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.core.api import OFence, Op, PMAllocator, Store
from repro.core.crash import CrashState

LINE = 64


@dataclass(frozen=True)
class LogEntry:
    """Payload stored in each slot."""

    seq: int
    value: object


@dataclass
class LogRecovery:
    """Result of recovering a log from a crash image."""

    #: values of the maximal clean prefix.
    values: List[object]
    #: sequence numbers that were missing while a later one survived.
    holes: List[int] = field(default_factory=list)
    #: entries found after the first hole (recovered by truncation).
    truncated: List[object] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.holes


class PersistentLog:
    """An append-only log over the simulated persistent heap."""

    def __init__(self, heap: PMAllocator, capacity: int = 64) -> None:
        self.capacity = capacity
        self.base = heap.alloc_lines(capacity)
        self._next_seq = 0
        #: shadow of everything appended (for tests/assertions).
        self.appended: List[object] = []

    def slot_addr(self, seq: int) -> int:
        if seq >= self.capacity:
            raise ValueError(f"log full: {seq} >= {self.capacity}")
        return self.base + seq * LINE

    def append(self, value: object) -> Iterator[Op]:
        """Yield the ops of one append (entry write + ordering fence)."""
        seq = self._next_seq
        self._next_seq += 1
        self.appended.append(value)
        yield Store(
            self.slot_addr(seq), 48, payload=LogEntry(seq=seq, value=value)
        )
        yield OFence()

    # ------------------------------------------------------------------

    def recover(self, state: CrashState) -> LogRecovery:
        """Scan the crash image; return the clean prefix and any holes."""
        values: List[object] = []
        holes: List[int] = []
        truncated: List[object] = []
        seen_hole = False
        for seq in range(min(self._next_seq, self.capacity)):
            payload = state.surviving_payload(self.slot_addr(seq))
            valid = isinstance(payload, LogEntry) and payload.seq == seq
            if not seen_hole:
                if valid:
                    values.append(payload.value)
                else:
                    seen_hole = True
                    first_missing = seq
            else:
                if valid:
                    # an entry survived beyond a missing one: a hole --
                    # ordering was violated.  Recover by truncation.
                    if not holes:
                        holes.append(first_missing)
                    truncated.append(payload.value)
        return LogRecovery(values=values, holes=holes, truncated=truncated)


__all__ = ["LogEntry", "LogRecovery", "PersistentLog"]
