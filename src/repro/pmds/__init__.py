"""Recoverable persistent data structures built on the ordering API.

The Table III workloads reproduce the *shape* of published structures for
the performance study; this package goes the other way: small, complete,
recoverable structures whose **recovery procedures actually run** against
crash images, demonstrating what ASAP's ordering primitives buy a library
author.

- :mod:`repro.pmds.plog`     -- an append-only log.  Appends are ordered
  (ofence per entry), so a crash can only lose a *suffix*; recovery scans
  to the first hole.
- :mod:`repro.pmds.pkvstore` -- a hash KV store with out-of-place
  entries.  An entry is written and ordered *before* the bucket head
  names it, so a recovered pointer can never dangle -- on hardware that
  preserves persist ordering.  (The no-undo ablation produces dangling
  pointers, and the recovery procedures here detect them.)
"""

from repro.pmds.plog import LogRecovery, PersistentLog
from repro.pmds.pkvstore import KVRecovery, PersistentKVStore

__all__ = [
    "KVRecovery",
    "LogRecovery",
    "PersistentKVStore",
    "PersistentLog",
]
