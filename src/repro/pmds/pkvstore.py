"""A recoverable hash key-value store with out-of-place updates.

Layout: ``buckets`` head lines (each holding the slot number of its
newest entry) and an entry pool.  A ``put``:

1. writes the new entry out of place -- key, value, and the slot of the
   previous bucket head (the chain link);
2. ofence -- the entry must be durable before anything names it;
3. publishes the bucket head.

Because of step 2's ordering, a recovered head pointer can never name an
entry that failed to persist, and a recovered chain link can never
dangle: the pointed-to entry is always older, hence (by per-bucket epoch
ordering) durable.  :meth:`PersistentKVStore.recover` walks every chain
and reports any dangling pointer -- which only unsound hardware produces.

Writers take a per-bucket lock (fine-grained, CCEH-style), so the store
is multi-thread safe under release persistency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.api import Acquire, Load, OFence, Op, PMAllocator, Release, Store
from repro.core.crash import CrashState

LINE = 64
NO_ENTRY = -1


@dataclass(frozen=True)
class KVEntry:
    """Payload of one out-of-place entry."""

    key: object
    value: object
    prev_slot: int  # chain link: slot of the previous bucket head


@dataclass(frozen=True)
class HeadPointer:
    """Payload of a bucket head: names the newest entry's slot."""

    slot: int


@dataclass
class KVRecovery:
    """Result of recovering the store from a crash image."""

    #: key -> recovered value (newest durable put per key).
    values: Dict[object, object]
    #: bucket indices whose head named a missing entry.
    dangling: List[int] = field(default_factory=list)
    #: number of entries reached by chain walks.
    entries_found: int = 0

    @property
    def clean(self) -> bool:
        return not self.dangling


class PersistentKVStore:
    """A recoverable chained-hash KV store."""

    def __init__(
        self, heap: PMAllocator, buckets: int = 8, pool_slots: int = 128
    ) -> None:
        self.num_buckets = buckets
        self.pool_slots = pool_slots
        self.heads = heap.alloc_lines(buckets)
        self.pool = heap.alloc_lines(pool_slots)
        self.locks = [heap.alloc_lock() for _ in range(buckets)]
        self._next_slot = 0
        #: volatile shadow: bucket -> newest slot (what the heads *should*
        #: say), plus key -> value for assertions.
        self._head_shadow: Dict[int, int] = {}
        self.shadow: Dict[object, object] = {}

    def bucket_of(self, key: object) -> int:
        return hash(key) % self.num_buckets

    def head_addr(self, bucket: int) -> int:
        return self.heads + bucket * LINE

    def slot_addr(self, slot: int) -> int:
        return self.pool + slot * LINE

    def put(self, key: object, value: object) -> Iterator[Op]:
        """Yield the ops of one insert/update (caller runs them)."""
        if self._next_slot >= self.pool_slots:
            raise ValueError("entry pool exhausted")
        bucket = self.bucket_of(key)
        yield Acquire(self.locks[bucket])
        yield Load(self.head_addr(bucket), 8)
        slot = self._next_slot
        self._next_slot += 1
        prev = self._head_shadow.get(bucket, NO_ENTRY)
        self.shadow[key] = value
        self._head_shadow[bucket] = slot
        # 1. the entry, out of place
        yield Store(
            self.slot_addr(slot), 48,
            payload=KVEntry(key=key, value=value, prev_slot=prev),
        )
        # 2. entry before pointer
        yield OFence()
        # 3. publish
        yield Store(self.head_addr(bucket), 8, payload=HeadPointer(slot=slot))
        yield Release(self.locks[bucket])

    # ------------------------------------------------------------------

    def recover(self, state: CrashState) -> KVRecovery:
        """Walk every bucket chain in the crash image."""
        values: Dict[object, object] = {}
        dangling: List[int] = []
        found = 0
        for bucket in range(self.num_buckets):
            head = state.surviving_payload(self.head_addr(bucket))
            if not isinstance(head, HeadPointer):
                continue  # bucket never published (or head lost): empty
            slot = head.slot
            while slot != NO_ENTRY:
                entry = state.surviving_payload(self.slot_addr(slot))
                if not isinstance(entry, KVEntry):
                    # A pointer (head or chain link) names an entry that
                    # never persisted -- impossible with correct persist
                    # ordering, since every entry is ordered before the
                    # pointer that names it.
                    dangling.append(bucket)
                    break
                found += 1
                # chains go newest-first; keep the newest value per key.
                values.setdefault(entry.key, entry.value)
                slot = entry.prev_slot
        return KVRecovery(values=values, dangling=dangling, entries_found=found)


__all__ = ["HeadPointer", "KVEntry", "KVRecovery", "PersistentKVStore"]
