"""Event-driven simulation engine.

The engine keeps a priority queue of scheduled callbacks ordered by
simulated time (measured in CPU cycles) and executes them in order.  All
hardware components in the reproduction (cores, persist buffers, memory
controllers, ...) interact exclusively by scheduling callbacks on a shared
engine instance, which makes the simulation deterministic: two events at the
same cycle fire in the order they were scheduled.

The clock is an integer number of CPU cycles.  The reproduction models a
2 GHz part (Table II of the paper), so one nanosecond equals two cycles; the
:func:`ns_to_cycles` helper performs that conversion for configuration values
expressed in nanoseconds.

Performance note (the hot loop of the whole simulator): the heap holds
plain ``(time, seq, Event)`` tuples rather than rich comparable objects.
``seq`` is unique, so tuple comparison never reaches the :class:`Event`
payload and orders entries entirely with C-level integer compares --
replacing the former dataclass ``__lt__``, which dominated profiles.  The
:class:`Event` handle (slotted, no dataclass machinery) survives only for
the public API: callers may :meth:`Event.cancel` it, and the delivery
order it encodes is identical to the old implementation by construction
(same ``(time, seq)`` key, same FIFO tie-break).
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

#: Simulated core frequency (Table II: 2 GHz).
CPU_FREQ_GHZ = 2.0


def ns_to_cycles(ns: float) -> int:
    """Convert a duration in nanoseconds to an integer number of CPU cycles.

    The result is rounded to the nearest cycle and is always at least one
    cycle for any strictly positive duration, so that scheduling a
    "1 ns later" event can never fire at the current cycle.
    """
    if ns <= 0:
        return 0
    return max(1, round(ns * CPU_FREQ_GHZ))


class Event:
    """A single scheduled callback.

    Events are ordered by ``(time, seq)``; ``seq`` is a monotonically
    increasing tie-breaker so that events scheduled for the same cycle run
    in FIFO order.  Cancelled events stay in the heap but are skipped when
    popped.
    """

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it is popped."""
        self.cancelled = True

    def __repr__(self) -> str:
        return f"Event(time={self.time}, seq={self.seq}, cancelled={self.cancelled})"


#: one heap entry: ``(time, seq, event)``.
_HeapEntry = Tuple[int, int, Event]


class Engine:
    """The discrete-event simulation core.

    Typical use::

        engine = Engine()
        engine.schedule(10, lambda: print("fires at cycle 10"))
        engine.run()

    Components hold a reference to the engine and call :meth:`schedule` /
    :meth:`at` to model latencies.  The engine itself has no knowledge of
    the hardware being simulated.
    """

    def __init__(self) -> None:
        self._queue: List[_HeapEntry] = []
        self._now: int = 0
        self._seq: int = 0
        self._events_executed: int = 0
        self._stopped: bool = False
        self._stop_reason: Optional[str] = None

    @property
    def now(self) -> int:
        """Current simulated time in CPU cycles."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events that have fired so far (for diagnostics)."""
        return self._events_executed

    @property
    def stop_reason(self) -> Optional[str]:
        """Why :meth:`run` returned, if :meth:`stop` was called."""
        return self._stop_reason

    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now.

        A non-positive delay schedules the callback for the current cycle;
        it will still run strictly after the currently executing event.
        Returns the :class:`Event`, which callers may :meth:`Event.cancel`.
        """
        time = self._now
        if delay > 0:
            time += int(delay)
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback)
        heapq.heappush(self._queue, (time, seq, event))
        return event

    def at(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at the absolute cycle ``time``."""
        time = int(time)
        if time < self._now:
            raise ValueError(
                f"cannot schedule event in the past: {time} < {self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback)
        heapq.heappush(self._queue, (time, seq, event))
        return event

    def stop(self, reason: str = "stopped") -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True
        self._stop_reason = reason

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or stop.

        ``until`` is an inclusive cycle bound: events scheduled after it are
        left in the queue and the clock is advanced to ``until`` (this models
        "a crash happened at cycle X" cleanly).  ``max_events`` guards
        against runaway simulations.  Returns the final simulated time.
        """
        self._stopped = False
        self._stop_reason = None
        # Local aliases keep the per-event overhead to a handful of
        # LOAD_FASTs; this loop executes tens of millions of times.  The
        # run-to-completion case (until=None) gets its own loop without
        # the queue peek and bound comparison.
        queue = self._queue
        heappop = heapq.heappop
        executed = self._events_executed
        bounded = max_events is not None
        try:
            if until is None:
                while queue:
                    if self._stopped:
                        break
                    time, _seq, event = heappop(queue)
                    if event.cancelled:
                        continue
                    self._now = time
                    executed += 1
                    event.callback()
                    if bounded and executed >= max_events:  # type: ignore[operator]
                        raise RuntimeError(
                            f"simulation exceeded max_events={max_events} "
                            f"(possible livelock at cycle {self._now})"
                        )
            else:
                while queue:
                    if self._stopped:
                        break
                    time = queue[0][0]
                    if time > until:
                        self._now = until
                        return until
                    event = heappop(queue)[2]
                    if event.cancelled:
                        continue
                    self._now = time
                    executed += 1
                    event.callback()
                    if bounded and executed >= max_events:  # type: ignore[operator]
                        raise RuntimeError(
                            f"simulation exceeded max_events={max_events} "
                            f"(possible livelock at cycle {self._now})"
                        )
        finally:
            self._events_executed = executed
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def pending(self) -> int:
        """Number of (non-cancelled) events still queued."""
        return sum(1 for entry in self._queue if not entry[2].cancelled)

    # -- checkpointing -----------------------------------------------------

    def ckpt_state(self) -> Dict[str, int]:
        """Serialize the engine clocks for a checkpoint.

        Only legal at a *quiescent point*: the event queue must hold no
        live events.  Callbacks are closures and cannot be serialized, so
        the machine drains the queue (parking the cores at op boundaries)
        before snapshotting; cancelled heap leftovers are behaviorally
        inert and are simply dropped.
        """
        if self.pending():
            raise RuntimeError(
                f"cannot checkpoint a non-quiescent engine "
                f"({self.pending()} live events queued)"
            )
        return {
            "now": self._now,
            "seq": self._seq,
            "events_executed": self._events_executed,
        }

    def ckpt_restore(self, state: Dict[str, int]) -> None:
        """Restore clocks saved by :meth:`ckpt_state` into a fresh engine."""
        if self._queue or self._now or self._seq:
            raise RuntimeError("ckpt_restore requires a fresh engine")
        self._now = int(state["now"])
        self._seq = int(state["seq"])
        self._events_executed = int(state["events_executed"])


class Waiter:
    """A one-shot wakeup list used to model hardware back-pressure.

    Components that can make a requester stall (a full persist buffer, a
    full epoch table, ...) keep a ``Waiter``; the stalled party registers a
    callback and the component wakes everyone when the resource frees up.
    Wakeups are delivered through the engine at the current cycle so the
    caller's stack never re-enters component code directly.
    """

    __slots__ = ("_engine", "_waiters")

    def __init__(self, engine: Engine) -> None:
        self._engine = engine
        self._waiters: List[Callable[[], None]] = []

    def wait(self, callback: Callable[[], None]) -> None:
        """Register ``callback`` to be run on the next :meth:`wake`."""
        self._waiters.append(callback)

    def wake(self) -> None:
        """Wake all currently registered waiters (in FIFO order)."""
        if not self._waiters:
            return
        waiters, self._waiters = self._waiters, []
        schedule = self._engine.schedule
        for callback in waiters:
            schedule(0, callback)

    def __len__(self) -> int:
        return len(self._waiters)


def make_engine() -> Engine:
    """Convenience factory (kept for API symmetry with other substrates)."""
    return Engine()


__all__ = ["CPU_FREQ_GHZ", "Engine", "Event", "Waiter", "make_engine", "ns_to_cycles"]
