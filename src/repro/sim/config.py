"""Configuration dataclasses for the simulated machine.

The defaults mirror Table II of the paper:

======================  =============================================
CPU cores               4 cores, 8-way OoO, 2 GHz
L1D caches              private, 32 kB, 8-way, 1 ns
L1I caches              private, 32 kB, 8-way, 1 ns
L2 cache                private, 2 MB, 8-way, 10 ns
LLC                     shared, 16 MB, 16-way
Coherence               MESI three level
Memory controllers      2 MCs, 16-entry WPQ, 32-entry RT
PM                      read 175 ns / write 90 ns
Persist buffers         32 entries, flush = 60 ns
======================  =============================================

All latencies are stored in nanoseconds in the config and converted to
cycles where they are consumed (see :func:`repro.sim.engine.ns_to_cycles`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

CACHE_LINE_BYTES = 64


class PersistencyModel(enum.Enum):
    """ISA/language-level persistency model a hardware design implements.

    ``EPOCH``  -- epoch persistency: every conflicting access between
    threads establishes a cross-thread persist dependency (strong persist
    atomicity).

    ``RELEASE`` -- release persistency: cross-thread dependencies are
    established only when an ``acquire`` synchronizes with a ``release``
    (requires data-race-free programs, as the paper notes in Section IV-E).
    """

    EPOCH = "epoch"
    RELEASE = "release"


class HardwareModel(enum.Enum):
    """The hardware designs evaluated in the paper (Section VII)."""

    BASELINE = "baseline"  # Intel clwb + sfence synchronous ordering
    HOPS = "hops"  # conservative flushing + global TS register polling
    ASAP = "asap"  # eager flushing + speculative memory updates
    EADR = "eadr"  # eADR / BBB: battery-backed caches (ideal)
    # Vorpal-style comparator (Table IV): vector-clock tags, ordering
    # queues at the controllers, periodic clock broadcasts.
    VORPAL = "vorpal"
    # Ablation model: ASAP's eager flushing without the recovery table.
    # Fast but *incorrect* -- exists so failure-injection tests can show
    # why undo records are necessary.
    ASAP_NO_UNDO = "asap_no_undo"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    ways: int
    latency_ns: float
    line_bytes: int = CACHE_LINE_BYTES

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.ways * self.line_bytes)
        if sets <= 0:
            raise ValueError(f"cache too small: {self}")
        return sets


@dataclass(frozen=True)
class NVMConfig:
    """Timing model for the persistent-memory device behind each MC.

    Latencies follow the Optane study the paper cites (Yang et al., FAST'20):
    reads are fast-ish and high-bandwidth, writes slower and bandwidth
    limited.  ``xpbuffer_lines`` models the internal write-combining buffer
    of an Optane DIMM: recently accessed lines hit in it and avoid paying
    the media read latency again (the paper leans on this when arguing the
    undo-record read-modify-write is cheap, Section V-A).
    """

    read_latency_ns: float = 175.0
    write_latency_ns: float = 90.0
    #: Number of writes a single device can service concurrently (banking
    #: across the DIMMs behind one controller).  4 concurrent 90 ns line
    #: writes = ~2.8 GB/s of write bandwidth per controller, in line with
    #: the Optane characterizations the paper cites.
    write_parallelism: int = 4
    xpbuffer_lines: int = 64


@dataclass(frozen=True)
class MachineConfig:
    """Full description of the simulated machine."""

    num_cores: int = 4
    num_mcs: int = 2
    cpu_freq_ghz: float = 2.0

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 8, 1.0)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(2 * 1024 * 1024, 8, 10.0)
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(16 * 1024 * 1024, 16, 30.0)
    )

    nvm: NVMConfig = field(default_factory=NVMConfig)

    #: Persist buffer entries per core (Table II: 32).
    pb_entries: int = 32
    #: Epoch table entries per core (Table II: 32).
    et_entries: int = 32
    #: Recovery table entries per memory controller (Table II: 32).
    rt_entries: int = 32
    #: Write pending queue entries per memory controller (Table II: 16).
    wpq_entries: int = 16

    #: Persist-buffer flush latency to the controller (Table II:
    #: flush = 60 ns) -- the one-way transit of a flush packet.
    pb_flush_ns: float = 60.0
    #: Issue occupancy of the PB's flush port (flushes are pipelined; a
    #: new one can be injected every couple of cycles).
    pb_issue_ns: float = 2.0
    #: Extra flush latency on the baseline: clwb write-backs travel through
    #: the cache hierarchy (L2 -> LLC -> MC), unlike the dedicated persist
    #: path the buffered designs add next to the L1.
    clwb_extra_ns: float = 30.0
    #: Maximum flushes a single persist buffer may have in flight.
    pb_inflight_max: int = 8
    #: One-way on-chip network latency core<->MC and core<->core.
    noc_latency_ns: float = 15.0
    #: Extra latency of an access that hits a line owned by another core
    #: (cache-to-cache transfer through the directory).
    coherence_extra_ns: float = 50.0
    #: Latency of an uncontended lock acquire/release operation.
    lock_access_ns: float = 15.0

    #: Interleaving granularity across memory controllers, in bytes.  The
    #: paper's bandwidth microbenchmark alternates 256-byte writes across
    #: two MCs, which matches Optane's interleaving.
    interleave_bytes: int = 256

    #: HOPS global timestamp register polling parameters (Section VII:
    #: "poll every 500 cycles with each access ... taking 50 cycles").
    hops_poll_interval_cycles: int = 500
    hops_poll_access_cycles: int = 50

    #: Vorpal clock-broadcast period ("the broadcast frequency determines
    #: the rate of forward progress", Section III).
    vorpal_broadcast_cycles: int = 100

    #: Writeback-buffer entries per core (private-cache eviction holding).
    wbb_entries: int = 8
    #: Counting-bloom-filter size at each MC for NACKed flush addresses.
    bloom_bits: int = 256
    bloom_hashes: int = 2

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("need at least one core")
        if self.num_mcs < 1:
            raise ValueError("need at least one memory controller")
        if self.interleave_bytes % CACHE_LINE_BYTES != 0:
            raise ValueError(
                "interleave granularity must be a multiple of the line size"
            )
        if self.pb_entries < 1 or self.et_entries < 1 or self.rt_entries < 0:
            raise ValueError("buffer sizes must be positive")

    def with_cores(self, num_cores: int) -> "MachineConfig":
        """Return a copy configured for a different core count."""
        return replace(self, num_cores=num_cores)

    def with_mcs(self, num_mcs: int) -> "MachineConfig":
        """Return a copy configured for a different MC count."""
        return replace(self, num_mcs=num_mcs)

    def scaled_nvm_write(self, factor: float) -> "MachineConfig":
        """Return a copy with NVM write latency scaled by ``factor``.

        Used by the bandwidth-sensitivity ablation: the paper argues ASAP's
        advantage grows as NVM write bandwidth grows (write latency drops).
        """
        nvm = replace(self.nvm, write_latency_ns=self.nvm.write_latency_ns * factor)
        return replace(self, nvm=nvm)


#: The paper's evaluated configuration (Table II).
TABLE_II_CONFIG = MachineConfig()


@dataclass(frozen=True)
class RunConfig:
    """Per-run knobs that are not machine properties."""

    hardware: HardwareModel = HardwareModel.ASAP
    persistency: PersistencyModel = PersistencyModel.RELEASE
    #: Hard cap on simulated events (livelock guard).
    max_events: Optional[int] = 50_000_000
    seed: int = 0


__all__ = [
    "CACHE_LINE_BYTES",
    "CacheConfig",
    "HardwareModel",
    "MachineConfig",
    "NVMConfig",
    "PersistencyModel",
    "RunConfig",
    "TABLE_II_CONFIG",
]
