"""Discrete-event simulation substrate.

This package provides the building blocks every hardware model in the
reproduction is assembled from:

- :mod:`repro.sim.engine` -- the event loop and simulated clock.
- :mod:`repro.sim.config` -- configuration dataclasses mirroring Table II of
  the paper.
- :mod:`repro.sim.stats` -- the statistics registry, including every counter
  listed in Table VI of the paper's artifact appendix.
"""

from repro.sim.config import (
    CacheConfig,
    MachineConfig,
    NVMConfig,
    PersistencyModel,
    TABLE_II_CONFIG,
)
from repro.sim.engine import Engine, Event
from repro.sim.stats import Counter, Histogram, StatsRegistry, TimeWeightedStat

__all__ = [
    "CacheConfig",
    "Counter",
    "Engine",
    "Event",
    "Histogram",
    "MachineConfig",
    "NVMConfig",
    "PersistencyModel",
    "StatsRegistry",
    "TABLE_II_CONFIG",
    "TimeWeightedStat",
]
