"""Statistics collection.

Every hardware component registers its counters in a shared
:class:`StatsRegistry`.  The registry implements the seven statistics the
paper's artifact appendix documents (Table VI) plus the occupancy and
bandwidth instrumentation needed by Figures 3, 9, 11, 12 and 13:

===================  ==========================================================
``cyclesBlocked``    Cycles for which a persist buffer is unable to flush
``cyclesStalled``    CPU stall cycles because of a full persist buffer
``dfenceStalled``    CPU stall cycles because of a dfence
``entriesInserted``  Total number of writes enqueued in the persist buffers
``interTEpochConflict``  Number of cross-thread dependencies
``totSpecWrites``    Number of early (speculative) flushes
``totalUndo``        Number of undo records created
===================  ==========================================================
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A fixed-bucket histogram over small non-negative integers.

    Used for occupancy distributions (persist buffer / recovery table),
    where values are bounded by the structure's capacity.
    """

    def __init__(self, name: str, max_value: int) -> None:
        self.name = name
        self.max_value = max_value
        self.buckets = [0] * (max_value + 1)
        self.samples = 0

    def record(self, value: int, weight: int = 1) -> None:
        if weight <= 0:
            return
        value = min(max(0, value), self.max_value)
        self.buckets[value] += weight
        self.samples += weight

    def mean(self) -> float:
        if self.samples == 0:
            return 0.0
        total = sum(v * c for v, c in enumerate(self.buckets))
        return total / self.samples

    def percentile(self, p: float) -> int:
        """Return the smallest value at or below which ``p`` percent of
        the (weighted) samples fall.  ``p`` is in [0, 100]."""
        if self.samples == 0:
            return 0
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        threshold = math.ceil(self.samples * p / 100.0)
        running = 0
        for value, count in enumerate(self.buckets):
            running += count
            if running >= threshold:
                return value
        return self.max_value

    def max_observed(self) -> int:
        for value in range(self.max_value, -1, -1):
            if self.buckets[value]:
                return value
        return 0


class TimeWeightedStat:
    """Tracks a level (e.g. buffer occupancy) weighted by how long it held.

    Call :meth:`update` whenever the level changes, passing the current
    simulated time; the time since the previous update is credited to the
    previous level.  Call :meth:`finish` at the end of the run.
    """

    def __init__(self, name: str, max_value: int) -> None:
        self.name = name
        self.histogram = Histogram(name, max_value)
        self._level = 0
        self._last_time = 0

    @property
    def level(self) -> int:
        return self._level

    def update(self, now: int, new_level: int) -> None:
        if now < self._last_time:
            raise ValueError("time went backwards in TimeWeightedStat")
        # inlined Histogram.record -- occupancy updates happen on every
        # enqueue/dequeue of every buffer, so the extra call was hot.
        weight = now - self._last_time
        if weight > 0:
            histogram = self.histogram
            level = self._level
            if level < 0:
                level = 0
            elif level > histogram.max_value:
                level = histogram.max_value
            histogram.buckets[level] += weight
            histogram.samples += weight
        self._level = new_level
        self._last_time = now

    def finish(self, now: int) -> None:
        """Credit the final interval; safe to call more than once."""
        if now > self._last_time:
            self.histogram.record(self._level, now - self._last_time)
            self._last_time = now

    def mean(self) -> float:
        return self.histogram.mean()

    def p99(self) -> int:
        return self.histogram.percentile(99.0)

    def max_observed(self) -> int:
        return max(self.histogram.max_observed(), self._level)


#: Table VI counter names, used to pre-register the canonical stats.
TABLE_VI_COUNTERS = (
    "cyclesBlocked",
    "cyclesStalled",
    "dfenceStalled",
    "entriesInserted",
    "interTEpochConflict",
    "totSpecWrites",
    "totalUndo",
)


class StatsRegistry:
    """All statistics for one simulation run.

    Counters are created lazily by name; scoped counters (per core, per MC)
    use a ``scope`` argument and can be summed across scopes with
    :meth:`total`.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, Optional[str]], Counter] = {}
        self._weighted: Dict[Tuple[str, Optional[str]], TimeWeightedStat] = {}
        for name in TABLE_VI_COUNTERS:
            self.counter(name)

    # -- counters ---------------------------------------------------------

    def counter(self, name: str, scope: Optional[str] = None) -> Counter:
        key = (name, scope)
        counter = self._counters.get(key)
        if counter is None:
            label = name if scope is None else f"{name}[{scope}]"
            counter = Counter(label)
            self._counters[key] = counter
        return counter

    def inc(self, name: str, amount: int = 1, scope: Optional[str] = None) -> None:
        self.counter(name, scope).inc(amount)

    def get(self, name: str, scope: Optional[str] = None) -> int:
        key = (name, scope)
        counter = self._counters.get(key)
        return counter.value if counter is not None else 0

    def total(self, name: str) -> int:
        """Sum of a counter over all scopes (including the unscoped one)."""
        return sum(c.value for (n, _), c in self._counters.items() if n == name)

    def scopes(self, name: str) -> List[str]:
        return sorted(
            scope
            for (n, scope) in self._counters
            if n == name and scope is not None
        )

    # -- time-weighted levels ---------------------------------------------

    def weighted(
        self, name: str, max_value: int, scope: Optional[str] = None
    ) -> TimeWeightedStat:
        key = (name, scope)
        stat = self._weighted.get(key)
        if stat is None:
            label = name if scope is None else f"{name}[{scope}]"
            stat = TimeWeightedStat(label, max_value)
            self._weighted[key] = stat
        return stat

    def weighted_stats(self, name: str) -> List[TimeWeightedStat]:
        return [s for (n, _), s in self._weighted.items() if n == name]

    def finish(self, now: int) -> None:
        for stat in self._weighted.values():
            stat.finish(now)

    # -- reporting ---------------------------------------------------------

    def as_dict(self) -> Dict[str, int]:
        """Flatten all counters (summed over scopes) into a plain dict."""
        out: Dict[str, int] = {}
        for (name, _scope), counter in self._counters.items():
            out[name] = out.get(name, 0) + counter.value
        return out

    def table_vi(self) -> Dict[str, int]:
        """The seven artifact-appendix statistics, summed over scopes."""
        return {name: self.total(name) for name in TABLE_VI_COUNTERS}

    def dump(self, names: Optional[Iterable[str]] = None) -> str:
        """Human-readable stat dump, one ``name = value`` line per counter."""
        data = self.as_dict()
        keys = sorted(data) if names is None else list(names)
        return "\n".join(f"{k} = {data.get(k, 0)}" for k in keys)

    # -- checkpointing ------------------------------------------------------

    def ckpt_state(self) -> Dict[str, List[List[object]]]:
        """Serialize every counter and time-weighted stat.

        The lists preserve registry insertion order, which is load-bearing:
        lazily-created counters must be re-created in the same order on
        restore so that any later lazy creations land in identical
        positions and reporting output stays byte-identical.
        """
        counters: List[List[object]] = [
            [name, scope, counter.value]
            for (name, scope), counter in self._counters.items()
        ]
        weighted: List[List[object]] = [
            [
                name,
                scope,
                stat.histogram.max_value,
                stat._level,
                stat._last_time,
                list(stat.histogram.buckets),
                stat.histogram.samples,
            ]
            for (name, scope), stat in self._weighted.items()
        ]
        return {"counters": counters, "weighted": weighted}

    def ckpt_restore(self, state: Dict[str, List[List[object]]]) -> None:
        """Restore :meth:`ckpt_state` output into this registry.

        Counters already created by machine construction (Table VI and any
        eagerly-registered occupancy stats) are overwritten in place; the
        rest are created in the saved order.
        """
        for entry in state["counters"]:
            name, scope, value = entry
            assert isinstance(name, str)
            assert scope is None or isinstance(scope, str)
            assert isinstance(value, int)
            self.counter(name, scope).value = value
        for wentry in state["weighted"]:
            name, scope, max_value, level, last_time, buckets, samples = wentry
            assert isinstance(name, str)
            assert scope is None or isinstance(scope, str)
            assert isinstance(max_value, int)
            assert isinstance(level, int) and isinstance(last_time, int)
            assert isinstance(buckets, list) and isinstance(samples, int)
            stat = self.weighted(name, max_value, scope)
            if stat.histogram.max_value != max_value:
                raise ValueError(
                    f"weighted stat {name!r} capacity changed "
                    f"({stat.histogram.max_value} != {max_value})"
                )
            stat._level = level
            stat._last_time = last_time
            stat.histogram.buckets = [int(b) for b in buckets]
            stat.histogram.samples = samples


__all__ = [
    "Counter",
    "Histogram",
    "StatsRegistry",
    "TABLE_VI_COUNTERS",
    "TimeWeightedStat",
]
