"""The memory controller.

Each controller owns a Write Pending Queue (durable, ADR) and optionally a
recovery table (ASAP's addition; injected by the machine assembler so that
this substrate does not depend on the paper's contribution).  It receives
*flush packets* from persist buffers (or from the baseline's clwb path) and
*commit messages* from epoch tables, processes them in arrival order, and
responds with ACK / NACK.

The handling of incoming flushes implements Table I of the paper:

=====================  ============================  =========================
Event                  Undo record NOT present       Undo record present
=====================  ============================  =========================
Safe flush arrives     Update memory                 Update undo record
Early flush arrives    Create undo record,           Create delay record
                       speculatively update memory
=====================  ============================  =========================

Durability boundary: a write is durable once accepted into the WPQ (ADR).
The controller tracks ``adr_value`` -- the newest durable write id per line
-- which is what an undo record must capture as the "safe value" and what a
crash drain writes to the media.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Protocol, Tuple

from repro.obs.events import EventType
from repro.sim.engine import Engine, ns_to_cycles
from repro.sim.config import CACHE_LINE_BYTES, MachineConfig
from repro.sim.stats import StatsRegistry
from repro.mem.nvm import NVMDevice
from repro.mem.wpq import WritePendingQueue

#: Fixed pipeline occupancy for processing one packet at the controller.
MC_PROCESS_CYCLES = 4


class ResponseKind(enum.Enum):
    ACK = "ack"
    NACK = "nack"


class FlushPacket:
    """A cache-line flush travelling from a persist buffer to a controller.

    Slotted plain class (not a dataclass): one is allocated per flush, on
    the simulator's hottest path."""

    __slots__ = ("line", "write_id", "core", "epoch_ts", "early", "seq")

    def __init__(
        self,
        line: int,
        write_id: int,
        core: int,
        epoch_ts: int,
        early: bool,
        seq: int = 0,
    ) -> None:
        self.line = line
        self.write_id = write_id
        self.core = core
        self.epoch_ts = epoch_ts
        self.early = early
        self.seq = seq

    def __repr__(self) -> str:
        return (
            f"FlushPacket(line={self.line:#x}, write_id={self.write_id}, "
            f"core={self.core}, epoch_ts={self.epoch_ts}, "
            f"early={self.early}, seq={self.seq})"
        )


class FlushResponse:
    """The controller's answer, routed back to the issuing persist buffer."""

    __slots__ = ("packet", "kind")

    def __init__(self, packet: FlushPacket, kind: ResponseKind) -> None:
        self.packet = packet
        self.kind = kind


@dataclass
class CommitMessage:
    """Epoch-commit notification from an epoch table (Section V-C)."""

    core: int
    epoch_ts: int
    on_ack: Callable[[], None] = field(default=lambda: None)


class RecoveryTableProtocol(Protocol):
    """What the controller needs from ASAP's recovery table.

    Implemented by :class:`repro.core.recovery_table.RecoveryTable`; kept as
    a protocol so the memory substrate has no import edge into the paper's
    contribution.
    """

    def has_undo(self, line: int) -> bool: ...

    def undo_owner(self, line: int) -> Optional[Tuple[int, int]]:
        """(core, epoch_ts) of the undo record guarding ``line``."""
        ...

    def create_undo(
        self, line: int, safe_value: int, core: int, epoch_ts: int
    ) -> bool: ...

    def update_undo(self, line: int, safe_value: int) -> None: ...

    def add_delay(
        self, line: int, write_id: int, core: int, epoch_ts: int
    ) -> bool: ...

    def process_commit(self, core: int, epoch_ts: int) -> List[Tuple[int, int]]:
        """Drop the epoch's undo records; return delayed writes that must
        now be re-processed as fresh arrivals (line, write_id) pairs whose
        own epochs just committed."""
        ...

    def undo_records(self) -> List[Tuple[int, int]]:
        """(line, safe_value) pairs -- the crash-drain payload."""
        ...


class MemoryController:
    """One memory controller with its WPQ, NVM device, and recovery table."""

    def __init__(
        self,
        engine: Engine,
        config: MachineConfig,
        stats: StatsRegistry,
        index: int,
        recovery_table: Optional[RecoveryTableProtocol] = None,
        bloom_filter: Optional[object] = None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.stats = stats
        self.index = index
        self.scope = f"mc{index}"
        self.recovery_table = recovery_table
        self.bloom_filter = bloom_filter
        #: Vorpal mode: a coordinator that holds incoming flushes in an
        #: ordering queue until their vector-clock dependences are durable.
        self.vorpal = None
        #: optional :class:`repro.obs.Tracer`; None = tracing off.  The
        #: machine assembler wires it here and into the WPQ / recovery
        #: table (see :meth:`repro.core.machine.Machine._attach_tracer`).
        self.tracer = None
        self.nvm = NVMDevice(engine, config.nvm, stats, self.scope)
        self.wpq = WritePendingQueue(engine, config.wpq_entries, stats, self.scope)
        #: newest durable (ADR-domain) write id per line.
        self.adr_value: Dict[int, int] = {}
        #: responses are delivered through this hook (wired by the machine).
        self.respond: Callable[[FlushResponse], None] = lambda resp: None
        #: deque: packets are consumed head-first, which list.pop(0) made O(n).
        self._input: Deque[object] = deque()
        self._processing = False
        self._drains_outstanding = 0
        #: lazily bound hot counters (first-use binding keeps zero-valued
        #: rows out of stats.txt for idle controllers).
        self._admitted_counter = None
        self._write_bytes_counter = None

    # ------------------------------------------------------------------
    # value plane
    # ------------------------------------------------------------------

    def durable_value(self, line: int) -> int:
        """Newest write id for ``line`` inside the persistence domain."""
        if line in self.adr_value:
            return self.adr_value[line]
        return self.nvm.peek(line)

    # ------------------------------------------------------------------
    # packet arrival
    # ------------------------------------------------------------------

    def receive_flush(self, packet: FlushPacket) -> None:
        """A flush packet arrived at the controller's input queue."""
        self._input.append(packet)
        self._kick()

    def receive_commit(self, message: CommitMessage) -> None:
        """A commit message arrived (always behind earlier flushes)."""
        self._input.append(message)
        self._kick()

    def _kick(self) -> None:
        if not self._processing and self._input:
            self._processing = True
            self.engine.schedule(MC_PROCESS_CYCLES, self._process_head)

    def _done_processing(self) -> None:
        self._processing = False
        self._kick()

    def _process_head(self) -> None:
        item = self._input.popleft()
        if isinstance(item, FlushPacket):
            self._process_flush(item)
        else:
            self._process_commit(item)

    # ------------------------------------------------------------------
    # Table I: flush handling
    # ------------------------------------------------------------------

    def _process_flush(self, packet: FlushPacket) -> None:
        if self.tracer is not None:
            self.tracer.emit(
                EventType.MC_FLUSH, "mc", mc=self.index, core=packet.core,
                epoch=packet.epoch_ts, line=packet.line,
                kind="early" if packet.early else "safe",
            )
        if self.vorpal is not None:
            # Vorpal: every write waits in the ordering queue until the
            # coordinator can prove its happens-before set is durable.
            self.vorpal.enqueue(self, packet)
            self._done_processing()
            return
        rt = self.recovery_table
        if rt is not None:
            # An arriving flush supersedes any delay record its own epoch
            # holds on the line (same-epoch, same-line flushes arrive in
            # program order); the stale delayed value must never
            # resurrect at commit.
            rt.supersede_delay(packet.line, packet.core, packet.epoch_ts)
        if rt is not None and rt.undo_owner(packet.line) == (
            packet.core, packet.epoch_ts,
        ):
            # The line's undo record belongs to this very epoch: an
            # earlier write of the same epoch updated memory speculatively
            # and captured the pre-epoch safe value.  This flush is simply
            # a newer value of the same speculation -- update memory and
            # leave the undo record alone.  (Folding it into the record
            # instead would lose the value when the epoch's own commit
            # deletes the record.)
            self.stats.inc("same_epoch_recoalesce", scope=self.scope)
            self._admit_to_wpq(packet)
            return
        if packet.early:
            if rt is None:
                raise RuntimeError(
                    "early flush received by a controller without a "
                    "recovery table (model wiring bug)"
                )
            if rt.has_undo(packet.line):
                # Table I, case 4: delay the flush.
                if rt.add_delay(
                    packet.line, packet.write_id, packet.core, packet.epoch_ts
                ):
                    self._finish_bloom(packet.line)
                    self._ack(packet)
                else:
                    self._nack(packet)
            else:
                # Table I, case 3: create undo, speculatively update memory.
                safe_value = self.durable_value(packet.line)
                if rt.create_undo(
                    packet.line, safe_value, packet.core, packet.epoch_ts
                ):
                    self.stats.inc("totalUndo", scope=self.scope)
                    # Creating the undo record reads the safe value off the
                    # device (read-modify-write).  The read happens in the
                    # background: NVM read bandwidth is plentiful and
                    # XPBuffer hits make most of these cheap (Section V-A).
                    # The ACK does not wait for it -- an early flush's ACK
                    # is not a durability promise (the write is rolled back
                    # on any crash before its epoch commits), and the
                    # commit message that *does* promise durability always
                    # trails the read by multiple round trips.
                    self.nvm.read_latency(packet.line)
                    self._admit_to_wpq(packet)
                    return
                else:
                    self._nack(packet)
        else:
            if rt is not None and rt.has_undo(packet.line):
                # Table I, case 2: memory already holds a newer speculative
                # value; fold the safe value into the undo record instead.
                rt.update_undo(packet.line, packet.write_id)
                self.stats.inc("safe_flush_absorbed", scope=self.scope)
                self._finish_bloom(packet.line)
                self._ack(packet)
            else:
                # Table I, case 1: the normal durable write.
                self._admit_to_wpq(packet)
                return
        self._done_processing()

    def _admit_to_wpq(self, packet: FlushPacket, ack_delay: int = 0) -> None:
        """Place the write into the WPQ, waiting for space if needed.

        Admission blocks the controller's input pipeline while the WPQ is
        full -- this is the back-pressure path that ultimately stalls
        persist buffers when the device cannot keep up.  ``ack_delay``
        postpones only the response (undo-record read latency).
        """
        if self.wpq.push(packet.line, packet.write_id):
            self.adr_value[packet.line] = packet.write_id
            counter = self._admitted_counter
            if counter is None:
                counter = self._admitted_counter = self.stats.counter(
                    "flushes_admitted", scope=self.scope
                )
            counter.inc()
            self._finish_bloom(packet.line)
            self._ack(packet, ack_delay)
            self._pump_drain()
            self._done_processing()
        else:
            self.wpq.space_waiter.wait(
                lambda: self._admit_to_wpq(packet, ack_delay)
            )

    def _ack(self, packet: FlushPacket, delay: int = 0) -> None:
        response = FlushResponse(packet=packet, kind=ResponseKind.ACK)
        if delay > 0:
            self.engine.schedule(delay, lambda: self.respond(response))
        else:
            self.respond(response)

    def _nack(self, packet: FlushPacket) -> None:
        self.stats.inc("flushes_nacked", scope=self.scope)
        if self.bloom_filter is not None:
            self.bloom_filter.add(packet.line)
        self.respond(FlushResponse(packet=packet, kind=ResponseKind.NACK))

    def _finish_bloom(self, line: int) -> None:
        """A flush for ``line`` succeeded; clear any NACK bloom entry."""
        if self.bloom_filter is not None:
            self.bloom_filter.discard(line)

    # ------------------------------------------------------------------
    # commit messages (Section V-C)
    # ------------------------------------------------------------------

    def _process_commit(self, message: CommitMessage) -> None:
        if self.tracer is not None:
            self.tracer.emit(
                EventType.MC_COMMIT, "mc", mc=self.index, core=message.core,
                epoch=message.epoch_ts,
            )
        rt = self.recovery_table
        released: List[Tuple[int, int]] = []
        if rt is not None:
            released = rt.process_commit(message.core, message.epoch_ts)
        self.stats.inc("commits_processed", scope=self.scope)
        self._apply_released(released, message)

    def _apply_released(
        self, released: List[Tuple[int, int]], message: CommitMessage
    ) -> None:
        """Write freed delay-record values to memory, then ACK the commit."""
        if not released:
            message.on_ack()
            self._done_processing()
            return
        line, write_id = released[0]
        rest = released[1:]
        if self.wpq.push(line, write_id):
            self.adr_value[line] = write_id
            self.stats.inc("delay_records_persisted", scope=self.scope)
            self._pump_drain()
            self._apply_released(rest, message)
        else:
            self.wpq.space_waiter.wait(
                lambda: self._apply_released(released, message)
            )

    # ------------------------------------------------------------------
    # WPQ drain to media
    # ------------------------------------------------------------------

    def _pump_drain(self) -> None:
        """Keep up to ``write_parallelism`` media writes in flight."""
        while (
            self._drains_outstanding < self.config.nvm.write_parallelism
            and len(self.wpq) > 0
        ):
            entry = self.wpq.pop_head()
            assert entry is not None
            self._drains_outstanding += 1
            counter = self._write_bytes_counter
            if counter is None:
                counter = self._write_bytes_counter = self.stats.counter(
                    "pm_write_bytes", scope=self.scope
                )
            counter.inc(CACHE_LINE_BYTES)
            self.nvm.write(entry.line, entry.write_id, self._drain_done)

    def _drain_done(self) -> None:
        self._drains_outstanding -= 1
        self._pump_drain()

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def ckpt_state(self) -> Dict[str, object]:
        """Serialize at a quiescent point: the input pipeline is idle and
        the WPQ / media write queues have drained."""
        if self._input or self._processing or self._drains_outstanding:
            raise RuntimeError(
                f"{self.scope}: cannot checkpoint a busy memory controller"
            )
        return {
            "adr_value": [[line, wid] for line, wid in self.adr_value.items()],
            "wpq": self.wpq.ckpt_state(),
            "nvm": self.nvm.ckpt_state(),
        }

    def ckpt_restore(self, state: Dict[str, object]) -> None:
        self.adr_value = {
            int(line): int(wid)
            for line, wid in state["adr_value"]  # type: ignore[union-attr]
        }
        self.wpq.ckpt_restore(state["wpq"])  # type: ignore[arg-type]
        self.nvm.ckpt_restore(state["nvm"])  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # crash path (Section V-E)
    # ------------------------------------------------------------------

    def crash_drain(self) -> Dict[int, int]:
        """Model the ADR power-fail sequence; return the post-crash media.

        1. Everything in the persistence domain (WPQ + in-flight media
           writes, summarized by ``adr_value``) reaches the media.
        2. Undo-record values are written on top, unwinding speculation.
        3. Delay records are discarded (their epochs never committed).
        """
        media = dict(self.nvm.media)
        media.update(self.adr_value)
        if self.recovery_table is not None:
            for line, safe_value in self.recovery_table.undo_records():
                media[line] = safe_value
        return media


__all__ = [
    "CommitMessage",
    "FlushPacket",
    "FlushResponse",
    "MC_PROCESS_CYCLES",
    "MemoryController",
    "RecoveryTableProtocol",
    "ResponseKind",
]
