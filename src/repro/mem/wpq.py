"""The Write Pending Queue (WPQ).

The WPQ is the small buffer inside each memory controller that Intel's ADR
(Asynchronous DRAM Refresh) guarantees will be drained to the media on a
power failure.  A write is therefore *durable* the moment it is accepted
into the WPQ -- this is the "persistence domain" boundary that every model
in the paper assumes (Section VII: "For all models, we assume ADR").

The queue coalesces: a new write to a line that already has a pending entry
merges into that entry (the memory controller would combine them anyway,
and the paper's Figure 9 discussion credits WPQ coalescing for part of
ASAP's write-endurance win).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.obs.events import EventType
from repro.sim.engine import Engine, Waiter
from repro.sim.stats import StatsRegistry


class WPQEntry:
    """One pending (durable) write awaiting media drain."""

    __slots__ = ("line", "write_id")

    def __init__(self, line: int, write_id: int) -> None:
        self.line = line
        self.write_id = write_id

    def __repr__(self) -> str:
        return f"WPQEntry(line={self.line:#x}, write_id={self.write_id})"


class WritePendingQueue:
    """Bounded FIFO of durable pending writes, drained by the NVM device."""

    def __init__(
        self,
        engine: Engine,
        capacity: int,
        stats: StatsRegistry,
        scope: str,
    ) -> None:
        self.engine = engine
        self.capacity = capacity
        self.stats = stats
        self.scope = scope
        #: deque: drain order pops the head, which list.pop(0) made O(n).
        self._entries: Deque[WPQEntry] = deque()
        self._by_line: Dict[int, WPQEntry] = {}
        #: optional :class:`repro.obs.Tracer` + owning MC index, wired by
        #: the machine assembler through the memory controller.
        self.tracer = None
        self.mc: Optional[int] = None
        self.space_waiter = Waiter(engine)
        self._occupancy = stats.weighted("wpq_occupancy", capacity, scope=scope)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def pending_value(self, line: int) -> Optional[int]:
        """Write id pending for ``line``, or None."""
        entry = self._by_line.get(line)
        return entry.write_id if entry is not None else None

    def push(self, line: int, write_id: int) -> bool:
        """Accept a write.  Returns False (and changes nothing) when full.

        Coalescing writes to a line already pending never needs space and
        always succeeds.
        """
        existing = self._by_line.get(line)
        if existing is not None:
            existing.write_id = write_id
            self.stats.inc("wpq_coalesced", scope=self.scope)
            return True
        if self.full:
            return False
        entry = WPQEntry(line=line, write_id=write_id)
        self._entries.append(entry)
        self._by_line[line] = entry
        self._occupancy.update(self.engine.now, len(self._entries))
        return True

    def pop_head(self) -> Optional[WPQEntry]:
        """Remove and return the oldest entry (drain order)."""
        if not self._entries:
            return None
        entry = self._entries.popleft()
        # The entry may have been re-coalesced; only drop the index if it
        # still points at this entry.
        if self._by_line.get(entry.line) is entry:
            del self._by_line[entry.line]
        self._occupancy.update(self.engine.now, len(self._entries))
        if self.tracer is not None:
            self.tracer.emit(
                EventType.WPQ_DRAIN, "wpq", mc=self.mc, line=entry.line,
                value=len(self._entries),
            )
        self.space_waiter.wake()
        return entry

    def drain_all(self) -> list[WPQEntry]:
        """Return and clear every pending entry, in FIFO order.

        This is the ADR crash path: on power failure the platform drains
        the WPQ to the media unconditionally.
        """
        entries, self._entries = self._entries, deque()
        self._by_line.clear()
        return list(entries)

    def snapshot(self) -> Dict[int, int]:
        """Line -> pending write id, newest wins (for inspection/tests)."""
        return {e.line: e.write_id for e in self._entries}

    # -- checkpointing -----------------------------------------------------

    def ckpt_state(self) -> Dict[str, object]:
        """Serialize at a quiescent point (the queue has fully drained to
        the media, so there is nothing to save beyond the invariant)."""
        if self._entries:
            raise RuntimeError(
                f"{self.scope}: cannot checkpoint a non-empty WPQ"
            )
        if len(self.space_waiter):
            raise RuntimeError(
                f"{self.scope}: cannot checkpoint with WPQ space waiters"
            )
        return {}

    def ckpt_restore(self, state: Dict[str, object]) -> None:
        pass  # quiescent WPQs are empty; occupancy stats restore globally.


__all__ = ["WPQEntry", "WritePendingQueue"]
