"""Memory-system substrate: NVM devices, WPQs, and memory controllers.

The paper's machine (Table II) has two memory controllers, each with a
16-entry Write Pending Queue (WPQ) inside the ADR persistence domain and a
32-entry Recovery Table (the recovery table itself lives in
:mod:`repro.core.recovery_table`; the controller here accepts it as a
pluggable flush handler so this substrate stays independent of the paper's
contribution).
"""

from repro.mem.interleave import AddressMap
from repro.mem.nvm import NVMDevice, XPBuffer
from repro.mem.wpq import WritePendingQueue, WPQEntry
from repro.mem.controller import (
    FlushPacket,
    FlushResponse,
    MemoryController,
    ResponseKind,
)

__all__ = [
    "AddressMap",
    "FlushPacket",
    "FlushResponse",
    "MemoryController",
    "NVMDevice",
    "ResponseKind",
    "WPQEntry",
    "WritePendingQueue",
    "XPBuffer",
]
