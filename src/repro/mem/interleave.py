"""Physical-address interleaving across memory controllers.

Server platforms interleave the physical address space across memory
controllers to spread bandwidth; the paper's Section III notes this makes
data structures span controllers, which is exactly what makes multi-MC
ordering expensive.  The paper's bandwidth microbenchmark uses 256-byte
writes alternating across two MCs, so the default granule is 256 bytes.
"""

from __future__ import annotations

from repro.sim.config import CACHE_LINE_BYTES


class AddressMap:
    """Maps byte addresses to cache lines and cache lines to controllers.

    Both decompositions are memoized: workloads touch a bounded set of
    addresses millions of times, so the arithmetic runs once per distinct
    ``(addr, size)`` / ``line``.  The list :meth:`lines_of` returns is the
    cached object itself -- callers must treat it as read-only.
    """

    __slots__ = ("num_mcs", "interleave_bytes", "line_bytes",
                 "_lines_memo", "_mc_memo")

    def __init__(
        self,
        num_mcs: int,
        interleave_bytes: int = 256,
        line_bytes: int = CACHE_LINE_BYTES,
    ) -> None:
        if num_mcs < 1:
            raise ValueError("need at least one memory controller")
        if interleave_bytes % line_bytes != 0:
            raise ValueError("interleave granule must be a multiple of a line")
        self.num_mcs = num_mcs
        self.interleave_bytes = interleave_bytes
        self.line_bytes = line_bytes
        self._lines_memo: dict = {}
        self._mc_memo: dict = {}

    def line_of(self, addr: int) -> int:
        """Cache-line address (aligned) containing byte ``addr``."""
        return addr - (addr % self.line_bytes)

    def lines_of(self, addr: int, size: int) -> list[int]:
        """All cache-line addresses touched by ``[addr, addr + size)``.

        The returned list is shared across calls; do not mutate it."""
        key = (addr, size)
        lines = self._lines_memo.get(key)
        if lines is None:
            if size <= 0:
                raise ValueError("size must be positive")
            first = self.line_of(addr)
            last = self.line_of(addr + size - 1)
            lines = list(range(first, last + 1, self.line_bytes))
            self._lines_memo[key] = lines
        return lines

    def mc_of(self, addr: int) -> int:
        """Index of the memory controller owning byte ``addr``."""
        return (addr // self.interleave_bytes) % self.num_mcs

    def mc_of_line(self, line: int) -> int:
        """Index of the memory controller owning cache line ``line``."""
        mc = self._mc_memo.get(line)
        if mc is None:
            mc = (line // self.interleave_bytes) % self.num_mcs
            self._mc_memo[line] = mc
        return mc


__all__ = ["AddressMap"]
