"""The non-volatile memory device model.

Values are modelled as opaque *write ids*: every store in a run gets a
globally unique, monotonically increasing id, and the device stores the id
of the newest write that has reached the media for each cache line.  This
lets the crash-consistency checker reason precisely about *which* write
survived without simulating data bytes.

Timing follows the Optane characterization the paper uses (Yang et al.,
FAST '20): long read latency (175 ns), lower write latency at the buffer
(90 ns), read bandwidth much higher than write bandwidth, and an internal
write-combining buffer (the *XPBuffer*) that absorbs hits to recently
accessed 256-byte blocks.  The paper's Section V-A leans on exactly these
properties to argue that creating undo records via read-modify-write is
cheap.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.sim.engine import Engine, ns_to_cycles
from repro.sim.config import NVMConfig
from repro.sim.stats import StatsRegistry

#: Internal Optane access granularity; the XPBuffer caches blocks this big.
XPLINE_BYTES = 256


class XPBuffer:
    """LRU model of the DIMM-internal write-combining buffer.

    Tracks recently touched 256-byte blocks.  A hit means the device can
    service the access from its internal buffer, skipping the 3D-XPoint
    media latency.
    """

    def __init__(self, capacity_lines: int) -> None:
        self.capacity = max(1, capacity_lines)
        self._blocks: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def block_of(line: int) -> int:
        return line - (line % XPLINE_BYTES)

    def access(self, line: int) -> bool:
        """Touch ``line``'s block; return True on hit."""
        block = self.block_of(line)
        if block in self._blocks:
            self._blocks.move_to_end(block)
            self.hits += 1
            return True
        self._blocks[block] = None
        if len(self._blocks) > self.capacity:
            self._blocks.popitem(last=False)
        self.misses += 1
        return False

    def __contains__(self, line: int) -> bool:
        return self.block_of(line) in self._blocks


class NVMDevice:
    """One persistent-memory device (one per memory controller).

    ``media`` is the durable array: line address -> newest write id on the
    media.  Writes are serviced by a small number of parallel banks
    (``write_parallelism``); when all banks are busy, writes queue up, which
    is how the device's limited write bandwidth emerges.
    """

    def __init__(
        self,
        engine: Engine,
        config: NVMConfig,
        stats: StatsRegistry,
        scope: str,
    ) -> None:
        self.engine = engine
        self.config = config
        self.stats = stats
        self.scope = scope
        self.media: Dict[int, int] = {}
        self.xpbuffer = XPBuffer(config.xpbuffer_lines)
        self._busy_banks = 0
        self._write_queue: Deque[
            Tuple[int, int, Optional[Callable[[], None]]]
        ] = deque()
        self._read_cycles = ns_to_cycles(config.read_latency_ns)
        self._write_cycles = ns_to_cycles(config.write_latency_ns)
        #: XPBuffer hits complete at a fraction of the media latency.
        self._buffered_write_cycles = max(1, self._write_cycles // 4)
        self._buffered_read_cycles = max(1, self._read_cycles // 8)
        #: lazily bound hot counters (bound on first use so a device that
        #: never reads/writes creates no zero-valued stats rows).
        self._writes_counter = None
        self._read_hits_counter = None
        self._reads_counter = None

    # -- value plane --------------------------------------------------------

    def peek(self, line: int) -> int:
        """Durable value (write id) currently on the media; 0 = pristine."""
        return self.media.get(line, 0)

    def commit_write(self, line: int, write_id: int) -> None:
        """Instantly place ``write_id`` on the media (crash-drain path)."""
        self.media[line] = write_id

    # -- timing plane --------------------------------------------------------

    def read_latency(self, line: int) -> int:
        """Cycles to read ``line`` right now (XPBuffer-aware).

        Reads are not queued: Optane read bandwidth is far higher than
        write bandwidth, so reads effectively never saturate the device in
        these workloads.  Only XPBuffer *misses* touch the media and count
        as PM reads (the Figure 9 discussion: undo-record reads mostly hit
        the internal buffer, so ASAP's extra media reads stay small).
        """
        if self.xpbuffer.access(line):
            counter = self._read_hits_counter
            if counter is None:
                counter = self._read_hits_counter = self.stats.counter(
                    "xpbuffer_read_hits", scope=self.scope
                )
            counter.inc()
            return self._buffered_read_cycles
        counter = self._reads_counter
        if counter is None:
            counter = self._reads_counter = self.stats.counter(
                "pm_reads", scope=self.scope
            )
        counter.inc()
        return self._read_cycles

    def write(
        self, line: int, write_id: int, on_done: Optional[Callable[[], None]] = None
    ) -> None:
        """Issue a media write; calls ``on_done`` when it completes.

        The value plane is updated when the write *completes* so that
        ``peek`` always reflects the durable media contents.
        """
        counter = self._writes_counter
        if counter is None:
            counter = self._writes_counter = self.stats.counter(
                "pm_writes", scope=self.scope
            )
        counter.inc()
        if self._busy_banks < self.config.write_parallelism:
            self._start_write(line, write_id, on_done)
        else:
            self._write_queue.append((line, write_id, on_done))

    def _start_write(
        self, line: int, write_id: int, on_done: Optional[Callable[[], None]]
    ) -> None:
        self._busy_banks += 1
        if self.xpbuffer.access(line):
            latency = self._buffered_write_cycles
        else:
            latency = self._write_cycles

        def finish() -> None:
            self.media[line] = write_id
            self._busy_banks -= 1
            if on_done is not None:
                on_done()
            if self._write_queue:
                next_line, next_id, next_done = self._write_queue.popleft()
                self._start_write(next_line, next_id, next_done)

        self.engine.schedule(latency, finish)

    @property
    def writes_in_flight(self) -> int:
        return self._busy_banks + len(self._write_queue)

    # -- checkpointing -----------------------------------------------------

    def ckpt_state(self) -> Dict[str, object]:
        """Serialize the media image and XPBuffer LRU state.

        The XPBuffer block order is load-bearing (LRU eviction decides
        future hit/miss latencies), so it is saved as an ordered list.
        """
        if self.writes_in_flight:
            raise RuntimeError(
                f"{self.scope}: cannot checkpoint with media writes in flight"
            )
        return {
            "media": [[line, wid] for line, wid in self.media.items()],
            "xp_blocks": list(self.xpbuffer._blocks.keys()),
            "xp_hits": self.xpbuffer.hits,
            "xp_misses": self.xpbuffer.misses,
        }

    def ckpt_restore(self, state: Dict[str, object]) -> None:
        self.media = {
            int(line): int(wid)
            for line, wid in state["media"]  # type: ignore[union-attr]
        }
        self.xpbuffer._blocks = OrderedDict(
            (int(block), None) for block in state["xp_blocks"]  # type: ignore[union-attr]
        )
        self.xpbuffer.hits = int(state["xp_hits"])  # type: ignore[arg-type]
        self.xpbuffer.misses = int(state["xp_misses"])  # type: ignore[arg-type]


__all__ = ["NVMDevice", "XPBuffer", "XPLINE_BYTES"]
