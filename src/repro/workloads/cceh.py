"""CCEH: Cacheline-Conscious Extendible Hashing (Nam et al., FAST '19).

A persistent extendible hash table: a directory of segment pointers, each
segment an array of cache-line-sized buckets.  Inserts write a 16-byte
slot and order it, then (for displacement or split) a handful of ordered
8-byte updates.  Segment splits rewrite a whole segment and then publish
it with a single ordered directory update -- CCEH's signature
failure-atomicity trick.

Writers take a per-segment lock; with a small number of hot segments this
produces the *frequent cross-thread dependencies* the paper highlights
(Figure 2) and the tiny epochs that make conservative flushing stall
(Figure 3).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    Load,
    OFence,
    PMAllocator,
    Program,
    Release,
    Store,
)
from repro.workloads.base import LINE, ChainTagger, Workload


class CCEH(Workload):
    """Insert-heavy extendible hashing (the paper's CCEH configuration)."""

    name = "cceh"
    category = "concurrent-ds"
    default_ops = 110

    SEGMENTS = 8
    BUCKETS_PER_SEGMENT = 16
    SLOTS_PER_BUCKET = 4

    def programs(self, heap: PMAllocator, num_threads: int) -> List[Program]:
        directory = heap.alloc_lines(2)
        segment_locks = [heap.alloc_lock() for _ in range(self.SEGMENTS)]
        segments = [
            heap.alloc_lines(self.BUCKETS_PER_SEGMENT)
            for _ in range(self.SEGMENTS)
        ]
        spare_segments = [
            heap.alloc_lines(self.BUCKETS_PER_SEGMENT)
            for _ in range(self.SEGMENTS)
        ]
        #: occupancy model: (segment, bucket) -> used slots
        occupancy: Dict[tuple, int] = {}
        programs = []

        for thread in range(num_threads):
            rng = self._rng(thread)

            def program(rng=rng, thread=thread):
                # crash oracle: the directory publish must never be
                # evident without the spare segment it points at (CCEH's
                # signature failure-atomicity invariant).
                chain = ChainTagger(f"cceh/t{thread}")
                for op in range(self.ops_per_thread):
                    yield Compute(50)  # hash the key
                    segment = rng.randrange(self.SEGMENTS)
                    bucket = rng.randrange(self.BUCKETS_PER_SEGMENT)
                    # lockless directory + bucket probe (CCEH readers don't
                    # lock; the load may raise an EP dependence)
                    yield Load(directory, 8)
                    yield Load(segments[segment] + bucket * LINE, 16)
                    yield Acquire(segment_locks[segment])
                    used = occupancy.get((segment, bucket), 0)
                    if used < self.SLOTS_PER_BUCKET:
                        # common case: one ordered 16-byte slot write
                        occupancy[(segment, bucket)] = used + 1
                        yield Store(
                            segments[segment] + bucket * LINE + used * 16, 16,
                            chain.tag(),
                        )
                        yield OFence()
                        chain.fence()
                    elif rng.random() < 0.7:
                        # linear-probe displacement into the neighbour bucket
                        neighbour = (bucket + 1) % self.BUCKETS_PER_SEGMENT
                        slot = occupancy.get((segment, neighbour), 0)
                        occupancy[(segment, neighbour)] = min(
                            self.SLOTS_PER_BUCKET, slot + 1
                        )
                        yield Store(
                            segments[segment]
                            + neighbour * LINE
                            + (slot % self.SLOTS_PER_BUCKET) * 16,
                            16,
                            chain.tag(),
                        )
                        yield OFence()
                        chain.fence()
                        yield Store(segments[segment] + bucket * LINE, 16,
                                    chain.tag())
                        yield OFence()
                        chain.fence()
                    else:
                        # segment split: rehash into the spare segment, then
                        # one ordered directory publish (failure-atomic)
                        for line in range(0, self.BUCKETS_PER_SEGMENT, 2):
                            yield Store(
                                spare_segments[segment] + line * LINE, 128,
                                chain.tag(),
                            )
                        yield OFence()
                        chain.fence()
                        yield Store(directory + (segment % 2) * LINE, 8,
                                    chain.tag())
                        yield OFence()
                        chain.fence()
                        segments[segment], spare_segments[segment] = (
                            spare_segments[segment], segments[segment],
                        )
                        for b in range(self.BUCKETS_PER_SEGMENT):
                            occupancy[(segment, b)] = 1
                    yield Release(segment_locks[segment])
                    chain.fence()
                yield DFence()

            programs.append(program())
        return programs


__all__ = ["CCEH"]
