"""Workload abstractions and persistence idioms.

A :class:`Workload` builds one thread program per simulated core.  The
programs are plain generators of ops (see :mod:`repro.core.api`); the
subclasses in this package implement real data-structure logic whose
*addresses and fences* follow the original implementations.

This module also provides the two persistence idioms the application
classes are built from:

- :func:`pmdk_tx` -- a PMDK-style undo-logging transaction (used by the
  WHISPER PMDK applications, Vacation and Memcached);
- :class:`AtlasSection` -- an ATLAS-style failure-atomic section, where
  every store inside a lock-delimited region is preceded by an undo-log
  append (used by the hand-written heap/queue/skip list).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    OFence,
    Op,
    PMAllocator,
    Program,
    Release,
    Store,
)
from repro.core.machine import Machine, RunResult
from repro.sim.config import MachineConfig, RunConfig

LINE = 64


class Workload:
    """Base class for every benchmark in the suite."""

    #: short name used in figures and the registry.
    name: str = "workload"
    #: Table III category ("whisper", "atlas", "concurrent-ds", "micro").
    category: str = "misc"
    #: default operations per thread at scale=1.0.
    default_ops: int = 120
    #: persistency-linter suppressions: detector name -> documented
    #: reason why the finding is by-design for this workload (see
    #: ``docs/lint.md``).  Suppressed findings still appear in verbose
    #: lint reports; they just do not fail the gate.
    lint_suppressions: Dict[str, str] = {}

    def __init__(self, ops_per_thread: Optional[int] = None, seed: int = 7) -> None:
        self.ops_per_thread = ops_per_thread or self.default_ops
        self.seed = seed

    def programs(self, heap: PMAllocator, num_threads: int) -> List[Program]:
        """Build one program per thread.  Subclasses must override."""
        raise NotImplementedError

    def recovery_oracle(self, state) -> List[str]:
        """Adjudicate a post-crash memory image semantically.

        ``state`` is a :class:`repro.core.crash.CrashState` from a run of
        this workload's programs.  Returns human-readable descriptions of
        every application-level invariant the image breaks (empty list =
        recoverable).  The default oracle checks the ordered chains the
        workload tagged via :class:`ChainTagger`; subclasses with richer
        invariants (e.g. transactional atomicity) override or extend it.
        """
        from repro.verify.chains import check_ordered_chains

        return [
            v.describe()
            for v in check_ordered_chains(state.log, state.media)
        ]

    def _rng(self, thread: int) -> random.Random:
        return random.Random((self.seed * 1_000_003 + thread * 97) & 0xFFFFFFFF)


class ChainTagger:
    """Stamps stores with ordered-chain payloads for the crash oracle.

    ``tag()`` returns the payload for the next store of the chain;
    ``fence()`` records that the workload is about to emit an ordering
    point (``OFence``/``DFence``/``Release``) so later stores carry a
    higher sequence number.  The resulting ``("ot", chain, seq)`` tuples
    are inert during simulation (payloads are never interpreted by the
    machine) and are read back by
    :func:`repro.verify.chains.check_ordered_chains`.

    Only bump at ordering points every hardware model honours; see the
    soundness note in :mod:`repro.verify.chains`.
    """

    def __init__(self, chain: str, seq: int = 0) -> None:
        self.chain = chain
        self.seq = seq

    def tag(self) -> tuple:
        return ("ot", self.chain, self.seq)

    def fence(self) -> None:
        self.seq += 1


@dataclass
class WorkloadResult:
    """A workload run under one (hardware, persistency) configuration.

    Results must stay **picklable**: the :mod:`repro.exp` engine ships
    them back from ``ProcessPoolExecutor`` workers and stores them in
    the on-disk result cache.  Everything reachable from here
    (:class:`~repro.core.machine.RunResult`, the stats registry, the
    epoch log) is plain data; keep it that way -- in particular, store
    only plain values as op payloads, never closures or live simulator
    objects.
    """

    workload: str
    result: RunResult
    #: observability summary (:meth:`repro.obs.StallProfiler.summary`)
    #: when the run was traced; None otherwise.  Deliberately excluded
    #: from :meth:`fingerprint` -- tracing must not change results.
    obs: Optional[Dict] = None

    @property
    def runtime_cycles(self) -> int:
        return self.result.runtime_cycles

    @property
    def stats(self):
        return self.result.stats

    def stats_dict(self) -> Dict[str, int]:
        """All counters, summed over scopes, as a plain dict."""
        return self.result.stats.as_dict()

    def fingerprint(self) -> tuple:
        """Everything that must be identical between a fresh run and a
        cache hit (or a serial and a parallel run) of the same spec."""
        return (
            self.workload,
            self.result.runtime_cycles,
            self.result.drain_cycles,
            self.result.ops_executed,
            tuple(self.result.per_core_runtime),
            tuple(sorted(self.stats_dict().items())),
        )


def run_workload(
    workload: Workload,
    config: MachineConfig,
    run_config: RunConfig,
    num_threads: Optional[int] = None,
    sinks: Optional[List] = None,
) -> WorkloadResult:
    """Assemble a machine and run ``workload`` on it.

    ``sinks`` is an optional list of :class:`repro.obs.EventSink`
    instances; supplying any turns on structured event tracing for the
    run (see :mod:`repro.obs`).  Tracing never alters simulation
    results.
    """
    threads = num_threads or config.num_cores
    heap = PMAllocator()
    programs = workload.programs(heap, threads)
    machine = Machine(config, run_config, sinks=sinks)
    result = machine.run(programs)
    return WorkloadResult(workload=workload.name, result=result)


# ---------------------------------------------------------------------------
# persistence idioms
# ---------------------------------------------------------------------------

def ordered_store(addr: int, size: int = 8, payload: object = None) -> Iterator[Op]:
    """A store followed by an ordering fence (store -> ofence)."""
    yield Store(addr, size, payload)
    yield OFence()


def pmdk_tx(
    log_base: int,
    log_slot: int,
    updates: List[tuple],
    log_entry_bytes: int = 64,
    work_cycles: int = 0,
    chain: Optional[ChainTagger] = None,
) -> Iterator[Op]:
    """A PMDK-style undo-logged transaction.

    For each update ``(addr, size)``: append an undo record (the old value
    plus metadata) to the transaction log, order it, then apply the data
    write.  The transaction commits with a dfence followed by an ordered
    invalidation of the log (PMDK's ``TX_COMMIT``: data must be durable
    before the undo log is dropped).

    ``log_slot`` selects a per-thread region in the log so concurrent
    transactions do not share log lines.

    ``chain`` (optional) tags the tx's stores for the crash oracle: data
    must not be evident without its undo records, nor the log drop
    without the data.
    """
    log_cursor = log_base + log_slot
    for index, (addr, size) in enumerate(updates):
        entry = log_cursor + index * log_entry_bytes
        # undo record: old value + address + length
        yield Store(
            entry,
            min(log_entry_bytes, max(size + 16, 32)),
            chain.tag() if chain else None,
        )
    yield OFence()
    if chain:
        chain.fence()
    if work_cycles:
        # transaction body: the computation that produces the new values
        yield Compute(work_cycles)
    for addr, size in updates:
        yield Store(addr, size, chain.tag() if chain else None)
    yield DFence()
    if chain:
        chain.fence()
    # drop the log (header write marks the tx committed)
    yield Store(log_cursor, 8, chain.tag() if chain else None)
    yield OFence()
    if chain:
        chain.fence()


@dataclass
class AtlasSection:
    """An ATLAS failure-atomic section.

    ATLAS ties failure atomicity to lock scopes: every store inside a
    critical section is preceded by an undo-log append, and log entries
    are ordered before their stores.  The log is per-thread; lock
    acquire/release bound the section.
    """

    lock: int
    log_base: int
    log_entry_bytes: int = 64
    #: entries the log region holds before the cursor wraps; must match
    #: the allocation backing ``log_base`` or appends bleed into
    #: neighbouring allocations (repro-lint PL004 catches this).
    log_entries: int = 32
    #: optional crash-oracle chain: log appends must be evident before
    #: their data stores (ATLAS's undo-before-data contract).
    chain: Optional[ChainTagger] = None
    _cursor: int = 0

    def begin(self) -> Iterator[Op]:
        yield Acquire(self.lock)

    def store(self, addr: int, size: int = 8, payload: object = None) -> Iterator[Op]:
        # ATLAS orders each undo-log append before its data store; the
        # data store itself needs no trailing fence (log entries of later
        # stores are independent of earlier data).
        entry = (
            self.log_base
            + (self._cursor % self.log_entries) * self.log_entry_bytes
        )
        self._cursor += 1
        tagging = self.chain is not None and payload is None
        yield Store(
            entry,
            min(self.log_entry_bytes, max(size + 16, 32)),
            self.chain.tag() if tagging else None,
        )
        yield OFence()
        if self.chain is not None:
            self.chain.fence()
        yield Store(addr, size, self.chain.tag() if tagging else payload)

    def end(self) -> Iterator[Op]:
        yield Release(self.lock)
        if self.chain is not None:
            self.chain.fence()


__all__ = [
    "AtlasSection",
    "ChainTagger",
    "LINE",
    "Workload",
    "WorkloadResult",
    "ordered_store",
    "pmdk_tx",
    "run_workload",
]
