"""FAST & FAIR: a crash-consistent B+-tree (Hwang et al., FAST '18).

FAST (Failure-Atomic ShifT) inserts into a sorted leaf by shifting
entries one slot at a time with *ordered 8-byte stores* -- every time the
shift crosses a cache-line boundary, the line is flushed and ordered
(this is the workload's signature: many tiny epochs, no logging).  FAIR
(Failure-Atomic In-place Rebalance) splits nodes with a sibling-pointer
publish ordered before the parent update.

Writers lock individual nodes; traversals are lock-free reads.  Hot
internal nodes make cross-thread dependencies common at higher thread
counts.
"""

from __future__ import annotations

import bisect
from typing import Dict, List

from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    Load,
    OFence,
    PMAllocator,
    Program,
    Release,
    Store,
)
from repro.workloads.base import LINE, ChainTagger, Workload


class FastFair(Workload):
    """Insert/search mix on the FAST&FAIR B+-tree (update-intensive)."""

    name = "fast_fair"
    category = "concurrent-ds"
    default_ops = 90

    LEAVES = 32
    ENTRIES_PER_LEAF = 14  # two 512-byte-ish nodes' worth of 8B pairs
    LEAF_LINES = 4

    def programs(self, heap: PMAllocator, num_threads: int) -> List[Program]:
        root = heap.alloc_lines(self.LEAF_LINES)
        inner = heap.alloc_lines(self.LEAF_LINES * 4)
        leaves = [heap.alloc_lines(self.LEAF_LINES) for _ in range(self.LEAVES)]
        leaf_locks = [heap.alloc_lock() for _ in range(self.LEAVES)]
        #: per-leaf sorted key model
        model: Dict[int, List[int]] = {i: [] for i in range(self.LEAVES)}
        programs = []

        for thread in range(num_threads):
            rng = self._rng(thread)

            def program(rng=rng, thread=thread):
                # crash oracle: parent update ⇒ sibling pointer ⇒ sibling
                # payload (FAIR), and each FAST shift step ⇒ the previous
                # one -- the tree is only traversable if these hold.
                chain = ChainTagger(f"fast_fair/t{thread}")
                for op in range(self.ops_per_thread):
                    yield Compute(60)
                    key = rng.randrange(1_000_000)
                    leaf = key % self.LEAVES
                    # lock-free traversal: root -> inner -> leaf
                    yield Load(root, 16)
                    yield Load(inner + (leaf // 8) * self.LEAF_LINES * LINE, 16)
                    yield Load(leaves[leaf], 16)
                    if rng.random() < 0.3:
                        continue  # search op: done after the traversal
                    yield Acquire(leaf_locks[leaf])
                    keys = model[leaf]
                    if len(keys) >= self.ENTRIES_PER_LEAF:
                        # FAIR split: write right sibling, publish sibling
                        # pointer, then update the parent -- each ordered.
                        half = len(keys) // 2
                        model[leaf] = keys[:half]
                        yield Store(leaves[leaf] + 2 * LINE, 128,
                                    chain.tag())  # new sibling payload
                        yield OFence()
                        chain.fence()
                        yield Store(leaves[leaf] + 3 * LINE, 8,
                                    chain.tag())  # sibling ptr
                        yield OFence()
                        chain.fence()
                        # FAIR's parent update is a single 8-byte atomic
                        # store (readers tolerate the transient state);
                        # a wider write here would be a cross-thread
                        # persist race on the shared inner node.
                        yield Store(
                            inner + (leaf // 8) * self.LEAF_LINES * LINE, 8,
                            chain.tag(),
                        )
                        yield OFence()
                        chain.fence()
                        keys = model[leaf]
                    position = bisect.bisect_left(keys, key)
                    keys.insert(position, key)
                    # FAST shift: move entries right one by one; an ofence
                    # every time the shift crosses a cache line.
                    shifted = len(keys) - position
                    line_crossings = max(1, (shifted * 16) // LINE + 1)
                    for crossing in range(line_crossings):
                        offset = (position * 16 + crossing * LINE) % (
                            self.LEAF_LINES * LINE - 16
                        )
                        yield Store(leaves[leaf] + offset, 16, chain.tag())
                        yield OFence()
                        chain.fence()
                    yield Release(leaf_locks[leaf])
                    chain.fence()
                yield DFence()

            programs.append(program())
        return programs


__all__ = ["FastFair"]
