"""ATLAS-framework data structures: heap, queue, skip list.

ATLAS (Chakrabarti et al., OOPSLA '14) derives failure atomicity from
lock scopes: every store inside a critical section is preceded by an
undo-log append.  These three hand-written structures follow that model
through :class:`repro.workloads.base.AtlasSection`:

- ``heap``     -- a binary min-heap; insert/delete sift paths touch
  O(log n) shared elements under one lock.
- ``queue``    -- a two-lock FIFO queue; tiny critical sections on hot
  head/tail lines make cross-thread dependencies *frequent* (Figure 2
  shows queue among the dependency-heavy workloads and HOPS_EP dropping
  below baseline on it).
- ``skiplist`` -- probabilistic multi-level list; long traversals (many
  loads) between updates.  The paper's scaling study (Figure 10) shows
  Skiplist as the workload that scales *worst*.
"""

from __future__ import annotations

from typing import List

from repro.core.api import (
    Compute,
    DFence,
    Load,
    PMAllocator,
    Program,
)
from repro.workloads.base import LINE, AtlasSection, ChainTagger, Workload

#: ATLAS publishes the last data store of a critical section under the
#: release without a trailing fence *by design*: every store is preceded
#: by a fence-ordered undo-log append, so a post-crash log replay makes
#: the section failure-atomic even if the final store was not persist-
#: ordered before the release (docs/lint.md#atlas-and-pl001).
_ATLAS_RELEASE_REASON = (
    "ATLAS failure-atomic section: each data store is preceded by an "
    "ordered undo-log append, so release-published stores are "
    "recoverable via log replay (docs/lint.md)"
)


class AtlasHeap(Workload):
    """Binary min-heap under a single ATLAS lock."""

    name = "heap"
    category = "atlas"
    default_ops = 90
    lint_suppressions = {"unfenced-release": _ATLAS_RELEASE_REASON}

    CAPACITY = 256

    def programs(self, heap_alloc: PMAllocator, num_threads: int) -> List[Program]:
        lock = heap_alloc.alloc_lock()
        storage = heap_alloc.alloc_lines(self.CAPACITY)
        size_cell = heap_alloc.alloc_lines(1)
        logs = [heap_alloc.alloc_lines(32) for _ in range(num_threads)]
        # shared python-level model of the heap (element keys)
        model: List[int] = []
        programs = []
        for thread in range(num_threads):
            rng = self._rng(thread)
            section = AtlasSection(
                lock=lock, log_base=logs[thread],
                chain=ChainTagger(f"heap/t{thread}"),
            )

            def program(rng=rng, section=section):
                for op in range(self.ops_per_thread):
                    yield Compute(80)
                    insert = len(model) < 8 or rng.random() < 0.55
                    yield from section.begin()
                    if insert:
                        key = rng.randrange(10_000)
                        model.append(key)
                        index = len(model) - 1
                        yield from section.store(storage + index * LINE, 16)
                        # sift up
                        while index > 0:
                            parent = (index - 1) // 2
                            yield Load(storage + parent * LINE, 8)
                            if model[parent] <= model[index]:
                                break
                            model[parent], model[index] = (
                                model[index], model[parent],
                            )
                            yield from section.store(storage + parent * LINE, 16)
                            yield from section.store(storage + index * LINE, 16)
                            index = parent
                    else:
                        # delete-min: move last to root, sift down
                        model[0] = model[-1]
                        model.pop()
                        yield from section.store(storage, 16)
                        index = 0
                        while True:
                            left, right = 2 * index + 1, 2 * index + 2
                            smallest = index
                            for child in (left, right):
                                if child < len(model):
                                    yield Load(storage + child * LINE, 8)
                                    if model[child] < model[smallest]:
                                        smallest = child
                            if smallest == index:
                                break
                            model[smallest], model[index] = (
                                model[index], model[smallest],
                            )
                            yield from section.store(storage + smallest * LINE, 16)
                            index = smallest
                    yield from section.store(size_cell, 8)
                    yield from section.end()
                yield DFence()

            programs.append(program())
        return programs


class AtlasQueue(Workload):
    """Two-lock FIFO queue; hot head/tail lines, tiny epochs."""

    name = "queue"
    category = "atlas"
    default_ops = 110
    lint_suppressions = {
        "unfenced-release": _ATLAS_RELEASE_REASON,
        # a FIFO queue cannot dequeue without bumping the head pointer,
        # so a run of dequeues re-dirties the head line every (tiny)
        # epoch.  That hot-line shape is this workload's defining
        # characteristic (Figure 2), not an accident (docs/lint.md).
        "epoch-shape": (
            "two-lock queue head/tail bumps are inherently one store "
            "per epoch on a dedicated hot line; the self-dependency "
            "chain is the workload's defining shape (docs/lint.md)"
        ),
    }

    NODES = 512
    #: per-op think time; queue operations are nearly pure pointer work.
    THINK_CYCLES = 20

    def programs(self, heap_alloc: PMAllocator, num_threads: int) -> List[Program]:
        head_lock = heap_alloc.alloc_lock()
        tail_lock = heap_alloc.alloc_lock()
        nodes = heap_alloc.alloc_lines(self.NODES)
        head_cell = heap_alloc.alloc_lines(1)
        tail_cell = heap_alloc.alloc_lines(1)
        logs = [heap_alloc.alloc_lines(16) for _ in range(num_threads)]
        state = {"head": 0, "tail": 0}
        programs = []
        for thread in range(num_threads):
            rng = self._rng(thread)
            # the 16-line log region is split 8/8 between the two
            # sections; log_entries must match or the cursors wrap past
            # their half into neighbouring threads' logs (a cross-thread
            # persist race repro-lint PL004 catches).
            # one chain across both sections: all claims are per-thread
            # program-order claims, and both sections fence identically.
            queue_chain = ChainTagger(f"queue/t{thread}")
            enq_section = AtlasSection(
                lock=tail_lock, log_base=logs[thread], log_entries=8,
                chain=queue_chain,
            )
            deq_section = AtlasSection(
                lock=head_lock, log_base=logs[thread] + 8 * LINE,
                log_entries=8, chain=queue_chain,
            )

            def program(rng=rng, enq=enq_section, deq=deq_section):
                for op in range(self.ops_per_thread):
                    yield Compute(self.THINK_CYCLES)
                    if state["tail"] - state["head"] < 2 or rng.random() < 0.5:
                        # enqueue: write node payload, link it, bump tail
                        slot = state["tail"] % self.NODES
                        yield from enq.begin()
                        yield from enq.store(nodes + slot * LINE, 32)
                        yield Load(tail_cell, 8)
                        yield from enq.store(tail_cell, 8)
                        state["tail"] += 1
                        yield from enq.end()
                    else:
                        yield from deq.begin()
                        yield Load(head_cell, 8)
                        slot = state["head"] % self.NODES
                        yield Load(nodes + slot * LINE, 8)
                        yield from deq.store(head_cell, 8)
                        state["head"] += 1
                        yield from deq.end()
                yield DFence()

            programs.append(program())
        return programs


class AtlasSkiplist(Workload):
    """Probabilistic skip list under a single ATLAS lock.

    Long traversals (loads across many nodes) between updates make this
    read-heavy relative to its persist traffic -- and serialization on
    one lock keeps it from scaling (the paper's worst scaler)."""

    name = "skiplist"
    category = "atlas"
    default_ops = 70
    lint_suppressions = {"unfenced-release": _ATLAS_RELEASE_REASON}

    MAX_LEVEL = 4
    CAPACITY = 512

    def programs(self, heap_alloc: PMAllocator, num_threads: int) -> List[Program]:
        lock = heap_alloc.alloc_lock()
        head = heap_alloc.alloc_lines(1)  # head sentinel (all levels)
        nodes = heap_alloc.alloc_lines(self.CAPACITY * 2)
        logs = [heap_alloc.alloc_lines(32) for _ in range(num_threads)]
        # python model: sorted list of keys with a node slot per key
        model: dict = {"keys": [], "slots": {}, "next_slot": 0}
        programs = []
        for thread in range(num_threads):
            rng = self._rng(thread)
            section = AtlasSection(
                lock=lock, log_base=logs[thread],
                chain=ChainTagger(f"skiplist/t{thread}"),
            )

            def program(rng=rng, section=section):
                import bisect

                for op in range(self.ops_per_thread):
                    yield Compute(60)
                    key = rng.randrange(100_000)
                    yield from section.begin()
                    # traverse: visit ~log2(n) nodes per level
                    keys = model["keys"]
                    position = bisect.bisect_left(keys, key)
                    hops = max(1, position.bit_length() + self.MAX_LEVEL)
                    for hop in range(hops):
                        probe = keys[
                            min(len(keys) - 1, (position * (hop + 1)) // (hops + 1))
                        ] if keys else None
                        slot = model["slots"].get(probe, 0)
                        yield Load(nodes + (slot % self.CAPACITY) * 2 * LINE, 8)
                    # insert node
                    slot = model["next_slot"] % self.CAPACITY
                    model["next_slot"] += 1
                    bisect.insort(keys, key)
                    model["slots"][key] = slot
                    level = 1
                    while level < self.MAX_LEVEL and rng.random() < 0.5:
                        level += 1
                    yield from section.store(
                        nodes + slot * 2 * LINE, 32 + 8 * level
                    )
                    # link predecessors at each level; the head sentinel
                    # is the predecessor of the smallest key (linking a
                    # node to itself would be a self-dependency chain).
                    pred_index = bisect.bisect_left(keys, key) - 1
                    if pred_index < 0 or keys[pred_index] == key:
                        pred_base = head
                    else:
                        pred_slot = model["slots"].get(keys[pred_index], 0)
                        pred_base = (
                            nodes + (pred_slot % self.CAPACITY) * 2 * LINE
                        )
                    for lvl in range(level):
                        yield from section.store(pred_base + 8 * lvl, 8)
                    yield from section.end()
                yield DFence()

            programs.append(program())
        return programs


__all__ = ["AtlasHeap", "AtlasQueue", "AtlasSkiplist"]
