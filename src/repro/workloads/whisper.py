"""WHISPER-class application kernels: Nstore, Echo, Vacation, Memcached.

These mirror the update-intensive configurations the paper uses
(Section VII): the PM-native applications (Nstore, Echo) order their own
log/data writes with ofence and commit with dfence, while the PMDK
applications (Vacation, Memcached) run undo-logged transactions under
locks.  Cross-thread persist dependencies are rare in all four
(Figure 2), which is why HOPS already does reasonably well here and
ASAP's win comes mostly from overlapping flushes with execution.
"""

from __future__ import annotations

from typing import List

from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    Load,
    OFence,
    PMAllocator,
    Program,
    Release,
    Store,
)
from repro.workloads.base import LINE, ChainTagger, Workload, pmdk_tx


class Nstore(Workload):
    """A PM-native storage-engine kernel (WAL + table heap).

    Each thread owns a table partition.  One operation = one transaction:

    1. append a write-ahead record (key+value, 64-128 B) to the partition
       log and order it,
    2. update the tuple in place (16-128 B) and order it,
    3. bump the per-partition commit marker and make it durable (dfence).

    Nstore keeps its partitions independent, so cross-thread dependencies
    essentially never happen -- but the dfence per transaction makes it
    fence-heavy, which is what hurts the Intel baseline.
    """

    name = "nstore"
    category = "whisper"
    default_ops = 100

    TUPLES_PER_PARTITION = 64

    def programs(self, heap: PMAllocator, num_threads: int) -> List[Program]:
        programs = []
        for thread in range(num_threads):
            rng = self._rng(thread)
            log = heap.alloc_lines(64)
            table = heap.alloc_lines(self.TUPLES_PER_PARTITION * 2)
            marker = heap.alloc_lines(1)

            def program(rng=rng, log=log, table=table, marker=marker,
                        thread=thread):
                # crash oracle: commit marker ⇒ tuple ⇒ WAL record
                chain = ChainTagger(f"nstore/t{thread}")
                log_cursor = 0
                for op in range(self.ops_per_thread):
                    value_size = rng.choice((16, 32, 64, 128))
                    tuple_index = rng.randrange(self.TUPLES_PER_PARTITION)
                    yield Compute(220)  # parse + plan
                    # 1. WAL append
                    yield Store(log + (log_cursor % 60) * LINE,
                                64 + value_size // 2, chain.tag())
                    log_cursor += 2
                    yield OFence()
                    chain.fence()
                    # 2. index lookup, then in-place tuple update
                    yield Compute(160)
                    yield Load(table + tuple_index * 2 * LINE, 8)
                    yield Store(table + tuple_index * 2 * LINE, value_size,
                                chain.tag())
                    yield OFence()
                    chain.fence()
                    # 3. post-update bookkeeping, then the commit marker
                    yield Compute(180)
                    yield Store(marker, 8, chain.tag())
                    yield DFence()
                    chain.fence()
                    yield Compute(150)  # respond to client

            programs.append(program())
        return programs


class Echo(Workload):
    """A scalable key-value store with per-worker logs.

    Echo workers append updates to private persistent logs and publish
    versions to a (rarely contended) shared version table under a striped
    lock.  Shape: big private appends, ordered; occasional shared-table
    writes create the few cross-thread dependencies this workload has.
    """

    name = "echo"
    category = "whisper"
    default_ops = 100

    VERSION_STRIPES = 16

    def programs(self, heap: PMAllocator, num_threads: int) -> List[Program]:
        stripe_locks = [heap.alloc_lock() for _ in range(self.VERSION_STRIPES)]
        version_table = heap.alloc_lines(self.VERSION_STRIPES)
        programs = []
        for thread in range(num_threads):
            rng = self._rng(thread)
            log = heap.alloc_lines(128)

            def program(rng=rng, log=log, thread=thread):
                # crash oracle: a published version must never be evident
                # without the log record it points at.
                chain = ChainTagger(f"echo/t{thread}")
                cursor = 0
                for op in range(self.ops_per_thread):
                    yield Compute(100)
                    # private log append: 2 lines of key+value
                    yield Store(log + (cursor % 120) * LINE, 128, chain.tag())
                    cursor += 2
                    yield OFence()
                    chain.fence()
                    # publish to the shared version table every few ops
                    if op % 4 == 0:
                        stripe = rng.randrange(self.VERSION_STRIPES)
                        yield Acquire(stripe_locks[stripe])
                        yield Load(version_table + stripe * LINE, 8)
                        yield Store(version_table + stripe * LINE, 16,
                                    chain.tag())
                        yield OFence()
                        chain.fence()
                        yield Release(stripe_locks[stripe])
                    if op % 8 == 7:
                        yield DFence()  # batch durability point
                        chain.fence()
                yield DFence()

            programs.append(program())
        return programs


class Vacation(Workload):
    """The STAMP travel-reservation system on PMDK-style transactions.

    A coarse-grained lock protects each query; the transaction undo-logs
    the two or three reservation records it touches, updates them, and
    commits.  Crucially (the paper calls this out), the application does
    volatile bookkeeping *before* releasing the lock -- by the time the
    next thread acquires it, the previous holder's flushes are done, so
    cross-thread dependencies are stale and eager flushing buys little
    extra here.
    """

    name = "vacation"
    category = "whisper"
    default_ops = 80

    RESERVATIONS = 128

    def programs(self, heap: PMAllocator, num_threads: int) -> List[Program]:
        table_lock = heap.alloc_lock()
        reservations = heap.alloc_lines(self.RESERVATIONS)
        tx_log = heap.alloc_lines(num_threads * 8)
        programs = []
        for thread in range(num_threads):
            rng = self._rng(thread)
            log_slot = thread * 8 * LINE

            def program(rng=rng, log_slot=log_slot, thread=thread):
                chain = ChainTagger(f"vacation/t{thread}")
                for op in range(self.ops_per_thread):
                    yield Compute(200)  # client think time / query planning
                    yield Acquire(table_lock)
                    picks = rng.sample(range(self.RESERVATIONS), 3)
                    for pick in picks:
                        yield Load(reservations + pick * LINE, 16)
                    yield from pmdk_tx(
                        tx_log,
                        log_slot,
                        [(reservations + pick * LINE, 32) for pick in picks],
                        chain=chain,
                    )
                    # volatile bookkeeping while still holding the lock
                    yield Compute(400)
                    yield Release(table_lock)
                # the final transaction's log-invalidation write is only
                # ordered (PMDK flushes it; the *next* commit makes it
                # durable) -- at workload end, drain it explicitly so no
                # committed transaction can be spuriously rolled back.
                yield DFence()

            programs.append(program())
        return programs


class CTree(Workload):
    """A crit-bit (PATRICIA) tree under Mnemosyne-style transactions.

    WHISPER's ``ctree`` persists a crit-bit tree with durable
    transactions: each insert logs its updates, applies them -- a new
    leaf plus one internal node spliced in with a single parent-pointer
    update -- and commits durably.  Traversals are pointer chases over
    internal nodes (one load per decided bit), so the read path grows
    with the tree while the persist set stays tiny.  A single writer
    lock serializes updates (Mnemosyne transactions are not concurrent),
    which keeps cross-thread persist dependencies rare.
    """

    name = "ctree"
    category = "whisper"
    default_ops = 90

    NODE_POOL = 512

    def programs(self, heap: PMAllocator, num_threads: int) -> List[Program]:
        tree_lock = heap.alloc_lock()
        root = heap.alloc_lines(1)
        nodes = heap.alloc_lines(self.NODE_POOL)
        tx_log = heap.alloc_lines(num_threads * 8)
        #: python model: sorted key list + key -> node slot
        model: dict = {"keys": [], "slots": {}, "next_slot": 0}
        programs = []
        for thread in range(num_threads):
            rng = self._rng(thread)
            log_slot = thread * 8 * LINE

            def program(rng=rng, log_slot=log_slot, thread=thread):
                import bisect

                chain = ChainTagger(f"ctree/t{thread}")
                for op in range(self.ops_per_thread):
                    yield Compute(130)  # key prep + crit-bit computation
                    key = rng.randrange(1 << 20)
                    yield Acquire(tree_lock)
                    # traverse: one internal node per decided bit
                    yield Load(root, 8)
                    keys = model["keys"]
                    depth = max(1, min(len(keys), 1).bit_length()
                                + len(keys).bit_length())
                    position = bisect.bisect_left(keys, key)
                    for hop in range(depth):
                        probe = keys[
                            min(len(keys) - 1,
                                (position * (hop + 1)) // (depth + 1))
                        ] if keys else None
                        slot = model["slots"].get(probe, 0)
                        yield Load(nodes + (slot % self.NODE_POOL) * LINE, 8)
                    # insert: new leaf + internal node + parent splice,
                    # all inside one Mnemosyne-style durable transaction
                    leaf_slot = model["next_slot"] % self.NODE_POOL
                    internal_slot = (model["next_slot"] + 1) % self.NODE_POOL
                    model["next_slot"] += 2
                    bisect.insort(keys, key)
                    model["slots"][key] = leaf_slot
                    parent_slot = model["slots"].get(
                        keys[max(0, position - 1)], 0
                    )
                    yield from pmdk_tx(
                        tx_log,
                        log_slot,
                        [
                            (nodes + leaf_slot * LINE, 48),
                            (nodes + internal_slot * LINE, 32),
                            (nodes + (parent_slot % self.NODE_POOL) * LINE, 8),
                        ],
                        work_cycles=80,
                        chain=chain,
                    )
                    yield Release(tree_lock)
                    yield Compute(90)
                # drain the last transaction's log-invalidation write
                # (see Vacation) so commit durability holds at exit.
                yield DFence()

            programs.append(program())
        return programs


class Memcached(Workload):
    """An in-memory key-value cache with persistent slabs.

    Items live in slab storage; the hash table is striped with per-bucket
    locks (low contention at 4-8 threads).  A SET undo-logs the item and
    the bucket head, writes the new item (16-128 B values), then links it
    -- the PMDK transaction pattern the WHISPER port uses.
    """

    name = "memcached"
    category = "whisper"
    default_ops = 100

    BUCKETS = 64

    def programs(self, heap: PMAllocator, num_threads: int) -> List[Program]:
        bucket_locks = [heap.alloc_lock() for _ in range(self.BUCKETS)]
        buckets = heap.alloc_lines(self.BUCKETS)
        # four two-line item slots per bucket: the largest value (128 B)
        # spans two lines, so single-line slots would let a big item
        # bleed into the next bucket's slab -- a cross-bucket persist
        # race (repro-lint PL004) under a different bucket lock.
        slabs = heap.alloc_lines(self.BUCKETS * 8)
        tx_log = heap.alloc_lines(num_threads * 8)
        programs = []
        for thread in range(num_threads):
            rng = self._rng(thread)
            log_slot = thread * 8 * LINE

            def program(rng=rng, log_slot=log_slot, thread=thread):
                chain = ChainTagger(f"memcached/t{thread}")
                for op in range(self.ops_per_thread):
                    yield Compute(180)  # request parse + hash
                    bucket = rng.randrange(self.BUCKETS)
                    value_size = rng.choice((16, 32, 64, 128))
                    yield Acquire(bucket_locks[bucket])
                    yield Load(buckets + bucket * LINE, 8)
                    item = slabs + (bucket * 8 + rng.randrange(4) * 2) * LINE
                    yield from pmdk_tx(
                        tx_log,
                        log_slot,
                        [(item, value_size), (buckets + bucket * LINE, 8)],
                        work_cycles=160,
                        chain=chain,
                    )
                    yield Release(bucket_locks[bucket])
                    yield Compute(120)  # respond
                # drain the last transaction's log-invalidation write
                # (see Vacation) so commit durability holds at exit.
                yield DFence()

            programs.append(program())
        return programs


__all__ = ["CTree", "Echo", "Memcached", "Nstore", "Vacation"]
