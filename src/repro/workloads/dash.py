"""Dash: scalable hashing on persistent memory (Lu et al., VLDB '20).

Dash comes in two flavours, both evaluated by the paper:

- **Dash-EH** (extendible hashing): fingerprint-filtered buckets with
  bucket-level locks, stash slots for overflow, and segment splits.
- **Dash-LH** (level hashing): two levels of buckets; inserts may bounce
  an entry from the top level to the bottom level.

Both do very little work per insert -- a fingerprint probe, a 16-byte
slot write, an ordered version bump -- so their epochs are tiny and
bucket-lock transfers create the dense cross-thread dependency streams of
Figure 2 (the paper's Figure 9 also notes Dash benefits from WPQ
coalescing of concurrent flushes).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    Load,
    OFence,
    PMAllocator,
    Program,
    Release,
    Store,
)
from repro.workloads.base import LINE, Workload


class _DashBase(Workload):
    """Shared machinery for the two Dash variants."""

    category = "concurrent-ds"
    default_ops = 120

    BUCKETS = 7
    SLOTS = 4

    def _bucket_op(self, rng, bucket_addr, version_addr, occupancy, key):
        """One insert into a bucket: probe, slot write, version bump."""
        yield Load(bucket_addr, 16)  # fingerprint probe
        used = occupancy.get(bucket_addr, 0)
        slot = used % self.SLOTS
        occupancy[bucket_addr] = used + 1
        yield Store(bucket_addr + slot * 16, 16)
        yield OFence()
        yield Store(version_addr, 8)  # bucket version/metadata bump
        yield OFence()


#: The overflow areas (EH's stash slots, LH's bottom level) are shared
#: between buckets whose locks differ, so a static lockset analysis sees
#: the 16-byte overflow writes as races.  Real Dash serializes them with
#: displacement locks plus fingerprint/version validation -- machinery
#: this cycle-level model deliberately omits (docs/lint.md#dash-and-pl004).
_DASH_OVERFLOW_REASON = (
    "Dash overflow writes (stash/bottom level) are guarded by "
    "displacement locks and version validation in the real "
    "implementation; the model elides that machinery (docs/lint.md)"
)


class DashEH(_DashBase):
    """Dash extendible hashing, insert-only (the paper's configuration)."""

    name = "dash_eh"
    lint_suppressions = {"persist-race": _DASH_OVERFLOW_REASON}

    def programs(self, heap: PMAllocator, num_threads: int) -> List[Program]:
        buckets = heap.alloc_lines(self.BUCKETS)
        stash = heap.alloc_lines(2)
        versions = heap.alloc_lines(self.BUCKETS)
        locks = [heap.alloc_lock() for _ in range(self.BUCKETS)]
        occupancy: Dict[int, int] = {}
        programs = []
        for thread in range(num_threads):
            rng = self._rng(thread)

            def program(rng=rng):
                for op in range(self.ops_per_thread):
                    yield Compute(45)
                    key = rng.randrange(1_000_000)
                    bucket = key % self.BUCKETS
                    yield Acquire(locks[bucket])
                    yield from self._bucket_op(
                        rng,
                        buckets + bucket * LINE,
                        versions + bucket * LINE,
                        occupancy,
                        key,
                    )
                    if occupancy.get(buckets + bucket * LINE, 0) % 7 == 0:
                        # overflow into the stash: one extra ordered write
                        yield Store(stash + (bucket % 2) * LINE, 16)
                        yield OFence()
                    yield Release(locks[bucket])
                yield DFence()

            programs.append(program())
        return programs


class DashLH(_DashBase):
    """Dash level hashing: top-level insert with bottom-level bounce."""

    name = "dash_lh"
    lint_suppressions = {"persist-race": _DASH_OVERFLOW_REASON}

    def programs(self, heap: PMAllocator, num_threads: int) -> List[Program]:
        top = heap.alloc_lines(self.BUCKETS)
        bottom = heap.alloc_lines(self.BUCKETS // 2)
        versions = heap.alloc_lines(self.BUCKETS)
        locks = [heap.alloc_lock() for _ in range(self.BUCKETS)]
        occupancy: Dict[int, int] = {}
        programs = []
        for thread in range(num_threads):
            rng = self._rng(thread)

            def program(rng=rng):
                for op in range(self.ops_per_thread):
                    yield Compute(45)
                    key = rng.randrange(1_000_000)
                    bucket = key % self.BUCKETS
                    yield Acquire(locks[bucket])
                    top_addr = top + bucket * LINE
                    used = occupancy.get(top_addr, 0)
                    if used >= self.SLOTS and used % 2 == 0:
                        # bounce the evicted entry to the bottom level
                        bottom_addr = bottom + (bucket // 2) * LINE
                        yield Load(bottom_addr, 16)
                        yield Store(bottom_addr, 16)
                        yield OFence()
                    yield from self._bucket_op(
                        rng, top_addr, versions + bucket * LINE, occupancy, key
                    )
                    yield Release(locks[bucket])
                yield DFence()

            programs.append(program())
        return programs


__all__ = ["DashEH", "DashLH"]
