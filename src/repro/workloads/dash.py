"""Dash: scalable hashing on persistent memory (Lu et al., VLDB '20).

Dash comes in two flavours, both evaluated by the paper:

- **Dash-EH** (extendible hashing): fingerprint-filtered buckets with
  bucket-level locks, stash slots for overflow, and segment splits.
- **Dash-LH** (level hashing): two levels of buckets; inserts may bounce
  an entry from the top level to the bottom level.

Both do very little work per insert -- a fingerprint probe, a 16-byte
slot write, an ordered version bump -- so their epochs are tiny and
bucket-lock transfers create the dense cross-thread dependency streams of
Figure 2 (the paper's Figure 9 also notes Dash benefits from WPQ
coalescing of concurrent flushes).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    Load,
    OFence,
    PMAllocator,
    Program,
    Release,
    Store,
)
from repro.workloads.base import LINE, ChainTagger, Workload


class _DashBase(Workload):
    """Shared machinery for the two Dash variants."""

    category = "concurrent-ds"
    default_ops = 120

    BUCKETS = 7
    SLOTS = 4

    def _bucket_op(self, rng, bucket_addr, version_addr, occupancy, key,
                   chain=None):
        """One insert into a bucket: probe, slot write, version bump.

        Crash oracle (``chain``): the version bump must never be evident
        without the slot write it validates.
        """
        yield Load(bucket_addr, 16)  # fingerprint probe
        used = occupancy.get(bucket_addr, 0)
        slot = used % self.SLOTS
        occupancy[bucket_addr] = used + 1
        yield Store(bucket_addr + slot * 16, 16, chain.tag() if chain else None)
        yield OFence()
        if chain:
            chain.fence()
        yield Store(version_addr, 8, chain.tag() if chain else None)
        yield OFence()
        if chain:
            chain.fence()


# The overflow areas (EH's stash slots, LH's bottom level) are shared
# between buckets whose locks differ, so overflow writes take a
# *displacement lock* on the overflow line, exactly like real Dash.  The
# lock matters beyond lint cleanliness: under release persistency an
# unsynchronized same-line write-after-write lets the loser's persist
# buffer flush a stale value AFTER the winner's newer write reached the
# ADR domain, regressing the post-crash media -- the crash-sweep
# campaign caught precisely that on the unguarded bottom level.


class DashEH(_DashBase):
    """Dash extendible hashing, insert-only (the paper's configuration)."""

    name = "dash_eh"

    def programs(self, heap: PMAllocator, num_threads: int) -> List[Program]:
        buckets = heap.alloc_lines(self.BUCKETS)
        stash = heap.alloc_lines(2)
        versions = heap.alloc_lines(self.BUCKETS)
        locks = [heap.alloc_lock() for _ in range(self.BUCKETS)]
        stash_locks = [heap.alloc_lock() for _ in range(2)]
        occupancy: Dict[int, int] = {}
        programs = []
        for thread in range(num_threads):
            rng = self._rng(thread)

            def program(rng=rng, thread=thread):
                chain = ChainTagger(f"dash_eh/t{thread}")
                for op in range(self.ops_per_thread):
                    yield Compute(45)
                    key = rng.randrange(1_000_000)
                    bucket = key % self.BUCKETS
                    yield Acquire(locks[bucket])
                    yield from self._bucket_op(
                        rng,
                        buckets + bucket * LINE,
                        versions + bucket * LINE,
                        occupancy,
                        key,
                        chain=chain,
                    )
                    if occupancy.get(buckets + bucket * LINE, 0) % 7 == 0:
                        # overflow into the stash: one extra ordered write
                        # under the stash's displacement lock (the stash
                        # is shared between buckets with distinct locks)
                        yield Acquire(stash_locks[bucket % 2])
                        yield Store(stash + (bucket % 2) * LINE, 16,
                                    chain.tag())
                        yield OFence()
                        chain.fence()
                        yield Release(stash_locks[bucket % 2])
                        chain.fence()
                    yield Release(locks[bucket])
                    chain.fence()
                yield DFence()

            programs.append(program())
        return programs


class DashLH(_DashBase):
    """Dash level hashing: top-level insert with bottom-level bounce."""

    name = "dash_lh"

    def programs(self, heap: PMAllocator, num_threads: int) -> List[Program]:
        top = heap.alloc_lines(self.BUCKETS)
        # bucket // 2 for bucket in [0, BUCKETS) needs ceil(BUCKETS / 2)
        # bottom lines; BUCKETS // 2 would alias the last odd bucket's
        # bottom line into the next allocation.
        bottom = heap.alloc_lines((self.BUCKETS + 1) // 2)
        versions = heap.alloc_lines(self.BUCKETS)
        locks = [heap.alloc_lock() for _ in range(self.BUCKETS)]
        bottom_locks = [
            heap.alloc_lock() for _ in range((self.BUCKETS + 1) // 2)
        ]
        occupancy: Dict[int, int] = {}
        programs = []
        for thread in range(num_threads):
            rng = self._rng(thread)

            def program(rng=rng, thread=thread):
                chain = ChainTagger(f"dash_lh/t{thread}")
                for op in range(self.ops_per_thread):
                    yield Compute(45)
                    key = rng.randrange(1_000_000)
                    bucket = key % self.BUCKETS
                    yield Acquire(locks[bucket])
                    top_addr = top + bucket * LINE
                    used = occupancy.get(top_addr, 0)
                    if used >= self.SLOTS and used % 2 == 0:
                        # bounce the evicted entry to the bottom level,
                        # under that line's displacement lock (two top
                        # buckets with distinct locks share it)
                        bottom_addr = bottom + (bucket // 2) * LINE
                        yield Acquire(bottom_locks[bucket // 2])
                        yield Load(bottom_addr, 16)
                        yield Store(bottom_addr, 16, chain.tag())
                        yield OFence()
                        chain.fence()
                        yield Release(bottom_locks[bucket // 2])
                        chain.fence()
                    yield from self._bucket_op(
                        rng, top_addr, versions + bucket * LINE, occupancy,
                        key, chain=chain,
                    )
                    yield Release(locks[bucket])
                    chain.fence()
                yield DFence()

            programs.append(program())
        return programs


__all__ = ["DashEH", "DashLH"]
