"""The canonical workload suite (Table III).

Every figure in the evaluation runs over ``SUITE`` -- the same fourteen
workloads the paper draws its bars from:

=============  ===========================  ==========================
Benchmark      Data structures              Source
=============  ===========================  ==========================
nstore                                      WHISPER (PM-native DBMS)
echo                                        WHISPER (scalable KV store)
ctree          crit-bit tree                WHISPER (Mnemosyne)
vacation                                    WHISPER (PMDK, travel system)
memcached                                   WHISPER (PMDK, KV cache)
heap           binary heap                  ATLAS
queue          two-lock FIFO                ATLAS
skiplist       skip list                    ATLAS
cceh           extendible hashing           CCEH (FAST '19)
fast_fair      B+-tree                      FAST&FAIR (FAST '18)
dash_lh        level hashing                Dash (VLDB '20)
dash_eh        extendible hashing           Dash (VLDB '20)
p_art          radix tree                   RECIPE (SOSP '19)
p_clht         hash table                   RECIPE (SOSP '19)
p_masstree     masstree                     RECIPE (SOSP '19)
=============  ===========================  ==========================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.workloads.base import Workload
from repro.workloads.whisper import CTree, Echo, Memcached, Nstore, Vacation
from repro.workloads.adversarial import CrossThreadPublish
from repro.workloads.atlas import AtlasHeap, AtlasQueue, AtlasSkiplist
from repro.workloads.buggy import BuggyDemo
from repro.workloads.cceh import CCEH
from repro.workloads.fastfair import FastFair
from repro.workloads.dash import DashEH, DashLH
from repro.workloads.recipe import PART, PCLHT, PMasstree
from repro.workloads.microbench import (
    BandwidthMicrobench,
    CoalescingMicrobench,
    FenceLatencyMicrobench,
)

#: the suite, in the order the paper's figures present it.
SUITE: List[Type[Workload]] = [
    Nstore,
    Echo,
    CTree,
    Vacation,
    Memcached,
    AtlasHeap,
    AtlasQueue,
    AtlasSkiplist,
    CCEH,
    FastFair,
    DashLH,
    DashEH,
    PART,
    PCLHT,
    PMasstree,
]

MICROBENCHES: List[Type[Workload]] = [
    BandwidthMicrobench,
    FenceLatencyMicrobench,
    CoalescingMicrobench,
]

#: fixtures: resolvable by name, but never part of the stock suite
#: (``repro lint --all`` must stay zero-findings and ``repro crashtest
#: --all`` zero-violations; these seed true positives for the lint
#: detector tests and the crash-sweep negative-path tests -- see
#: docs/lint.md and docs/crashtest.md).
FIXTURES: List[Type[Workload]] = [
    BuggyDemo,
    CrossThreadPublish,
]

_BY_NAME: Dict[str, Type[Workload]] = {
    cls.name: cls for cls in SUITE + MICROBENCHES + FIXTURES
}


def workload_names() -> List[str]:
    """Names of the Table III suite, in figure order."""
    return [cls.name for cls in SUITE]


def get_workload(
    name: str, ops_per_thread: Optional[int] = None, seed: int = 7
) -> Workload:
    """Instantiate a workload by its figure name."""
    try:
        cls = _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(_BY_NAME)}"
        ) from None
    return cls(ops_per_thread=ops_per_thread, seed=seed)


__all__ = [
    "FIXTURES",
    "MICROBENCHES",
    "SUITE",
    "get_workload",
    "workload_names",
]
