"""Crash-sweep adversarial fixture: a cross-thread publish race.

``xpub`` is a crash-test fixture (never part of the stock suite) built
to make the ``ASAP_NO_UNDO`` ablation fail its crash sweep.  Thread 0
jams memory controller 0 with a burst of line writes inside a critical
section, publishes a record on the same controller, and releases the
lock *immediately* -- while the burst is still in flight.  Thread 1
acquires the lock, reads the publication, and writes its own record on
the *other* controller, which is idle and acknowledges instantly.

Under release persistency the acquire raises a cross-thread persist
dependency: thread 1's write must never become durable before thread
0's publication.  Every sound design honours that (the oracle chain
``a -> b`` stays green at all crash points).  The ``ASAP_NO_UNDO``
ablation flushes speculatively but has no recovery table to unwind, so
a crash inside the handoff window leaves ``b`` on media while ``a`` is
still stuck behind the jam -- a single-line media delta the campaign's
minimizer shrinks to.
"""

from __future__ import annotations

from typing import List

from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    Load,
    OFence,
    PMAllocator,
    Program,
    Release,
    Store,
)
from repro.sim.config import CACHE_LINE_BYTES
from repro.workloads.base import LINE, Workload

#: directory interleaving granularity the fixture assumes when steering
#: addresses to one controller (matches MachineConfig.interleave_bytes).
_INTERLEAVE = 256


def _mc_lines(base: int, mc: int, count: int, num_mcs: int = 2) -> List[int]:
    """First ``count`` line addresses at/after ``base`` that map to ``mc``."""
    out: List[int] = []
    addr = base
    while len(out) < count:
        if (addr // _INTERLEAVE) % num_mcs == mc:
            out.append(addr)
        addr += CACHE_LINE_BYTES
    return out


class CrossThreadPublish(Workload):
    """Lock-handoff publish with a jammed home controller."""

    name = "xpub"
    category = "fixture"
    default_ops = 1
    lint_suppressions = {
        # the publication is deliberately released without a fence: under
        # release persistency the *hardware* must order it before any
        # dependent write -- that contract is what the fixture probes.
        "unfenced-release": (
            "xpub publishes under the release by design: the crash sweep "
            "verifies the hardware's release-persistency ordering, which "
            "is exactly what an unfenced publish relies on (docs/lint.md)"
        ),
    }

    #: lines in the MC0 jam burst; large enough that the WPQ and persist
    #: queue are still draining when the lock is handed over.
    JAM_LINES = 40

    def programs(self, heap: PMAllocator, num_threads: int) -> List[Program]:
        lock = heap.alloc_lock()
        chunk = heap.alloc(96 * 1024, align=_INTERLEAVE)
        burst = _mc_lines(chunk, 0, self.JAM_LINES)
        publish = _mc_lines(chunk + 48 * 1024, 0, 1)[0]
        reaction = _mc_lines(chunk + 64 * 1024, 1, 1)[0]
        clean = heap.alloc_lines(max(1, num_threads))

        def publisher() -> Program:
            yield Acquire(lock)
            for addr in burst:
                yield Store(addr, 64)
            yield Store(publish, 64, ("ot", "xpub", 0))
            # release immediately: the jam is still in flight, so the
            # cross-thread dependency forms inside the drain window.
            yield Release(lock)
            yield Compute(3000)
            yield DFence()

        def subscriber() -> Program:
            yield Compute(40)
            yield Acquire(lock)
            yield Load(publish, 8)
            yield Store(reaction, 64, ("ot", "xpub", 1))
            yield OFence()
            yield Release(lock)
            yield DFence()

        def clean_worker(thread: int) -> Program:
            yield Compute(60)
            yield Store(clean + thread * LINE, 8)
            yield OFence()
            yield DFence()

        programs: List[Program] = []
        for thread in range(num_threads):
            if thread == 0:
                programs.append(publisher())
            elif thread == 1:
                programs.append(subscriber())
            else:
                programs.append(clean_worker(thread))
        return programs


__all__ = ["CrossThreadPublish"]
