"""RECIPE-converted indexes: P-ART, P-CLHT, P-Masstree (Lee et al., SOSP '19).

RECIPE converts concurrent DRAM indexes into crash-consistent PM indexes
by inserting flushes/fences after every store that makes an update
visible.  The conversions keep the original fine-grained synchronization,
so they inherit dense cross-thread interaction -- the paper singles these
out (with CCEH and Dash) as the workloads where conservative flushing
falls apart and ASAP shines.

- **P-ART**: an adaptive radix tree (ROWEX-style writers).  Shallow
  paths, tiny ordered updates, good scalability -- the paper's *best*
  scaler in Figure 10.
- **P-CLHT**: a cache-line hash table: one bucket per cache line,
  in-place 16-byte writes under per-bucket locks.
- **P-Masstree**: a trie of B+-trees; deeper traversals, node-level
  locking, fence-per-line updates.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    Load,
    OFence,
    PMAllocator,
    Program,
    Release,
    Store,
)
from repro.workloads.base import LINE, ChainTagger, Workload


class PART(Workload):
    """P-ART radix-tree inserts."""

    name = "p_art"
    category = "concurrent-ds"
    default_ops = 120

    FANOUT_NODES = 8
    LEAF_POOL = 256

    def programs(self, heap: PMAllocator, num_threads: int) -> List[Program]:
        inner_nodes = heap.alloc_lines(self.FANOUT_NODES * 2)
        leaves = heap.alloc_lines(self.LEAF_POOL)
        node_locks = [heap.alloc_lock() for _ in range(self.FANOUT_NODES)]
        # each thread allocates leaves from its own pool partition: a PM
        # allocator never hands one address to two threads without an
        # intervening free, so pool wrap must stay thread-local (cross-
        # thread slot reuse is a persist race repro-lint PL004 catches).
        pool_span = max(1, self.LEAF_POOL // max(1, num_threads))
        programs = []
        for thread in range(num_threads):
            rng = self._rng(thread)
            pool_base = (thread * pool_span) % self.LEAF_POOL

            def program(rng=rng, pool_base=pool_base, thread=thread):
                # crash oracle: a published child pointer must never be
                # evident without the leaf record it points at.
                chain = ChainTagger(f"p_art/t{thread}")
                allocated = 0
                for op in range(self.ops_per_thread):
                    yield Compute(40)
                    key = rng.randrange(1_000_000)
                    node = key % self.FANOUT_NODES
                    # radix descent: 2-3 node reads (lock-free, ROWEX)
                    yield Load(inner_nodes, 8)
                    yield Load(inner_nodes + node * 2 * LINE, 8)
                    yield Acquire(node_locks[node])
                    # write the leaf record, order it, then publish the
                    # child pointer in the inner node (RECIPE's pattern:
                    # ordered store before visibility store)
                    slot = pool_base + allocated % pool_span
                    allocated += 1
                    yield Store(leaves + slot * LINE, 32, chain.tag())
                    yield OFence()
                    chain.fence()
                    yield Store(inner_nodes + node * 2 * LINE + 8, 8,
                                chain.tag())
                    yield OFence()
                    chain.fence()
                    if allocated % 16 == 0:
                        # node growth (Node4 -> Node16 style): copy + publish
                        yield Store(inner_nodes + node * 2 * LINE + LINE, 64,
                                    chain.tag())
                        yield OFence()
                        chain.fence()
                        yield Store(inner_nodes + node * 2 * LINE, 8,
                                    chain.tag())
                        yield OFence()
                        chain.fence()
                    yield Release(node_locks[node])
                    chain.fence()
                yield DFence()

            programs.append(program())
        return programs


class PCLHT(Workload):
    """P-CLHT cache-line hash table inserts."""

    name = "p_clht"
    category = "concurrent-ds"
    default_ops = 120

    BUCKETS = 16

    def programs(self, heap: PMAllocator, num_threads: int) -> List[Program]:
        buckets = heap.alloc_lines(self.BUCKETS)
        locks = [heap.alloc_lock() for _ in range(self.BUCKETS)]
        occupancy: Dict[int, int] = {}
        programs = []
        for thread in range(num_threads):
            rng = self._rng(thread)

            def program(rng=rng, thread=thread):
                chain = ChainTagger(f"p_clht/t{thread}")
                for op in range(self.ops_per_thread):
                    yield Compute(40)
                    bucket = rng.randrange(self.BUCKETS)
                    addr = buckets + bucket * LINE
                    yield Load(addr, 16)  # lock-free probe
                    yield Acquire(locks[bucket])
                    slot = occupancy.get(addr, 0) % 3
                    occupancy[addr] = occupancy.get(addr, 0) + 1
                    # CLHT: key+value written into the bucket line, one
                    # atomic visibility store, one fence
                    yield Store(addr + slot * 16, 16, chain.tag())
                    yield OFence()
                    chain.fence()
                    yield Release(locks[bucket])
                    chain.fence()
                yield DFence()

            programs.append(program())
        return programs


class PMasstree(Workload):
    """P-Masstree inserts (trie of B+-trees; deeper traversals)."""

    name = "p_masstree"
    category = "concurrent-ds"
    default_ops = 90

    TRIE_NODES = 8
    LEAVES = 24

    def programs(self, heap: PMAllocator, num_threads: int) -> List[Program]:
        trie = heap.alloc_lines(self.TRIE_NODES * 4)
        leaves = heap.alloc_lines(self.LEAVES * 4)
        leaf_locks = [heap.alloc_lock() for _ in range(self.LEAVES)]
        occupancy: Dict[int, int] = {}
        programs = []
        for thread in range(num_threads):
            rng = self._rng(thread)

            def program(rng=rng, thread=thread):
                # crash oracle: permutation word ⇒ entry write; trie
                # publish ⇒ sibling payload.
                chain = ChainTagger(f"p_masstree/t{thread}")
                for op in range(self.ops_per_thread):
                    yield Compute(70)
                    key = rng.randrange(1_000_000)
                    # trie descent: one layer per 8-byte key slice
                    for layer in range(3):
                        yield Load(
                            trie + ((key >> (8 * layer)) % self.TRIE_NODES)
                            * 4 * LINE,
                            8,
                        )
                    leaf = key % self.LEAVES
                    leaf_addr = leaves + leaf * 4 * LINE
                    yield Load(leaf_addr, 16)
                    yield Acquire(leaf_locks[leaf])
                    used = occupancy.get(leaf_addr, 0)
                    occupancy[leaf_addr] = used + 1
                    # masstree leaf insert: permutation-ordered entry write
                    # then the permutation word, each ordered
                    yield Store(leaf_addr + LINE + (used % 12) * 16, 16,
                                chain.tag())
                    yield OFence()
                    chain.fence()
                    yield Store(leaf_addr, 8, chain.tag())  # permutation word
                    yield OFence()
                    chain.fence()
                    if used % 12 == 11:
                        # leaf split: sibling write + trie-layer publish
                        yield Store(leaf_addr + 2 * LINE, 128, chain.tag())
                        yield OFence()
                        chain.fence()
                        yield Store(
                            trie + (key % self.TRIE_NODES) * 4 * LINE, 8,
                            chain.tag(),
                        )
                        yield OFence()
                        chain.fence()
                    yield Release(leaf_locks[leaf])
                    chain.fence()
                yield DFence()

            programs.append(program())
        return programs


__all__ = ["PART", "PCLHT", "PMasstree"]
