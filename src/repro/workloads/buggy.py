"""A deliberately buggy lint fixture: one true positive per detector.

``buggy_demo`` is **not** part of the stock suite (``repro lint --all``
never gates on it); it exists so every ``repro.lint`` detector has a
deterministic true positive to regression-test against, and so
``docs/lint.md`` has a concrete workload to point at.  Thread 0 carries
the single-thread bugs, thread 1 supplies the racing partner for PL004,
and any further threads run a clean fenced loop.

The seeded bugs, in stream order:

- **PL001 unfenced-release** -- thread 0 publishes a 16-byte store with
  a lock release and no fence in between.
- **PL004 persist-race** -- thread 1 stores the same 16-byte record
  under a *different* lock: disjoint locksets, no happens-before.
- **PL003 redundant-fence** -- a doubled ``OFence`` and a doubled
  ``DFence``, each second fence ordering/draining nothing.
- **PL005 epoch-shape** -- a hot line re-dirtied in six consecutive
  epochs (self-dependency chain) and a single epoch dirtying 30 lines
  (oversized).
- **PL002 unpersisted-tail** -- thread 0 ends (after a ``NewStrand``,
  for strand coverage) with dirty stores and no ``DFence``.
- **PL006 cas-publish** -- thread 1 initializes a 16-byte node and
  immediately ``CAS``-publishes it into a persistent list head with no
  fence in between: recovery can follow the new pointer to an
  unpersisted node.

The fixture also seeds a **crash-oracle true positive** for
:mod:`repro.crashtest`: thread 0 tags its stores with one ordered chain
(see :class:`repro.workloads.base.ChainTagger`) that keeps counting
**across the NewStrand** -- asserting the tail store is ordered after
the big epoch, an ordering strand persistency never promises.  Designs
that exploit the strand relaxation (ASAP commits the post-strand tail
epoch independently of the still-in-flight 30-line epoch) can crash
with the tail evident while the big epoch's writes are lost: the
semantic oracle fires while the generic Theorem-2 checker stays clean
(the strand start drops the dependency edge, so no DAG ancestry is
violated).  That split -- app-level violation, hardware-level legal --
is exactly what the per-workload oracle exists to catch.
"""

from __future__ import annotations

from typing import List

from repro.core.api import (
    CAS,
    Acquire,
    Compute,
    DFence,
    NewStrand,
    OFence,
    PMAllocator,
    Program,
    Release,
    Store,
)
from repro.workloads.base import LINE, ChainTagger, Workload


class BuggyDemo(Workload):
    """Lint fixture seeding one true positive per detector."""

    name = "buggy_demo"
    category = "fixture"
    default_ops = 1

    #: lines in the deliberately oversized epoch (> LintConfig default
    #: ``max_epoch_lines`` of 24).
    OVERSIZED_LINES = 30
    #: consecutive epochs re-dirtying the hot line (>= LintConfig
    #: default ``self_dep_min_run`` of 5).
    HOT_EPOCHS = 6

    def programs(self, heap: PMAllocator, num_threads: int) -> List[Program]:
        lock_a = heap.alloc_lock()
        lock_b = heap.alloc_lock()
        shared = heap.alloc_lines(1)   # raced 16-byte record
        scratch = heap.alloc_lines(1)
        hot = heap.alloc_lines(1)      # self-dependency chain target
        big = heap.alloc_lines(self.OVERSIZED_LINES)
        tail = heap.alloc_lines(1)     # never drained
        node = heap.alloc_lines(1)     # lock-free node, CAS-published
        head = heap.alloc_lines(1)     # persistent list head
        clean = heap.alloc_lines(max(1, num_threads))

        def buggy_writer() -> Program:
            # The crash-oracle bug: this chain keeps counting across the
            # NewStrand below, claiming tail-after-big ordering that
            # strand persistency never provides.  Do NOT imitate; sound
            # chains reset (or stop) at strand boundaries.
            chain = ChainTagger("buggy/t0")
            # PL001: store published by the release, no fence between.
            yield Acquire(lock_a)
            yield Store(shared, 16)
            yield Release(lock_a)
            yield OFence()
            # PL003: orders nothing (no store since the fence above).
            yield OFence()
            yield Store(scratch, 8)
            yield DFence()
            # PL003: drains nothing (no store since the dfence above).
            yield DFence()
            # PL005 (self-dependency): the hot line in every epoch.
            for _ in range(self.HOT_EPOCHS):
                yield Store(hot, 8, chain.tag())
                yield OFence()
                chain.fence()
            # PL005 (oversized): one epoch dirtying OVERSIZED_LINES.
            for index in range(self.OVERSIZED_LINES):
                yield Store(big + index * LINE, 8, chain.tag())
            yield OFence()
            chain.fence()
            # PL002: dirty stores on a fresh strand, never drained.
            yield NewStrand()
            yield Store(tail, 8, chain.tag())

        def racing_writer() -> Program:
            # PL004: same 16-byte record as thread 0, different lock.
            yield Acquire(lock_b)
            yield Store(shared, 16)
            yield OFence()
            yield Release(lock_b)
            yield DFence()
            # PL006: the node is initialized and CAS-linked into the
            # persistent head with no fence between -- the pointer can
            # persist before the node it points to.
            yield Store(node, 16)
            yield CAS(head, 8)
            yield DFence()

        def clean_worker(thread: int) -> Program:
            yield Compute(10)
            yield Store(clean + thread * LINE, 8)
            yield OFence()
            yield DFence()

        programs: List[Program] = []
        for thread in range(num_threads):
            if thread == 0:
                programs.append(buggy_writer())
            elif thread == 1:
                programs.append(racing_writer())
            else:
                programs.append(clean_worker(thread))
        return programs


__all__ = ["BuggyDemo"]
