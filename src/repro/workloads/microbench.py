"""Microbenchmarks: the Figure 13 bandwidth kernel and synthetic probes.

The paper's system-bandwidth experiment (Section VII-C): each thread
issues 256-byte writes that alternate across the two memory controllers,
ordered with an ofence between writes.  Conservative designs serialize on
the cross-MC acknowledgement (one controller idles while the other
works); ASAP's eager flushing overlaps them and roughly doubles delivered
bandwidth.
"""

from __future__ import annotations

from typing import List

from repro.core.api import (
    Compute,
    DFence,
    OFence,
    PMAllocator,
    Program,
    Store,
)
from repro.sim.config import CACHE_LINE_BYTES
from repro.workloads.base import ChainTagger, Workload


class BandwidthMicrobench(Workload):
    """Ordered 256-byte writes alternating across memory controllers."""

    name = "bandwidth"
    category = "micro"
    default_ops = 200

    WRITE_BYTES = 256

    def programs(self, heap: PMAllocator, num_threads: int) -> List[Program]:
        programs = []
        for thread in range(num_threads):
            # A contiguous region: with 256-byte interleaving consecutive
            # 256-byte writes naturally alternate MCs.
            region = heap.alloc(
                self.WRITE_BYTES * self.ops_per_thread, align=self.WRITE_BYTES
            )

            def program(region=region, thread=thread):
                chain = ChainTagger(f"bandwidth/t{thread}")
                for op in range(self.ops_per_thread):
                    yield Store(region + op * self.WRITE_BYTES,
                                self.WRITE_BYTES, chain.tag())
                    yield OFence()
                    chain.fence()
                yield DFence()

            programs.append(program())
        return programs

    def bytes_written(self, num_threads: int) -> int:
        return self.WRITE_BYTES * self.ops_per_thread * num_threads


class FenceLatencyMicrobench(Workload):
    """Single ordered line write per epoch -- isolates fence latency."""

    name = "fence_latency"
    category = "micro"
    default_ops = 150

    def programs(self, heap: PMAllocator, num_threads: int) -> List[Program]:
        programs = []
        for thread in range(num_threads):
            region = heap.alloc_lines(64)

            def program(region=region, thread=thread):
                chain = ChainTagger(f"fence_latency/t{thread}")
                for op in range(self.ops_per_thread):
                    yield Store(region + (op % 64) * CACHE_LINE_BYTES, 64,
                                chain.tag())
                    yield OFence()
                    chain.fence()
                    yield Compute(25)
                yield DFence()

            programs.append(program())
        return programs


class CoalescingMicrobench(Workload):
    """Repeated writes to a small working set -- stresses coalescing.

    Many stores land on lines already queued in the persist buffer (or
    pending in the WPQ), so the number of PM writes should be far below
    the number of stores (Figure 9's mechanism in isolation)."""

    name = "coalescing"
    category = "micro"
    default_ops = 200
    #: this microbench exists to hammer the same few lines epoch after
    #: epoch -- the self-dependency chains PL005 flags are the entire
    #: point of the experiment, not an accident (docs/lint.md).
    lint_suppressions = {
        "epoch-shape": (
            "coalescing microbench deliberately re-dirties a hot "
            "working set across consecutive epochs to measure persist-"
            "buffer coalescing (docs/lint.md)"
        ),
    }

    HOT_LINES = 4

    def programs(self, heap: PMAllocator, num_threads: int) -> List[Program]:
        programs = []
        for thread in range(num_threads):
            region = heap.alloc_lines(self.HOT_LINES)

            def program(region=region, thread=thread):
                chain = ChainTagger(f"coalescing/t{thread}")
                for op in range(self.ops_per_thread):
                    yield Store(
                        region + (op % self.HOT_LINES) * CACHE_LINE_BYTES, 8,
                        chain.tag(),
                    )
                    if op % 8 == 7:
                        yield OFence()
                        chain.fence()
                yield DFence()

            programs.append(program())
        return programs


__all__ = ["BandwidthMicrobench", "CoalescingMicrobench", "FenceLatencyMicrobench"]
