"""The evaluation workloads (Table III), re-implemented in shape.

Every workload is a real data structure or application kernel written
against the simulator's PMem API (:mod:`repro.core.api`): the Python-level
structure state evolves in simulated-time order, and the fence/epoch
placement mirrors the original implementations.

Three classes of applications, as in the paper:

1. WHISPER benchmarks -- native (Nstore, Echo) and PMDK-style transactional
   (Vacation, Memcached) -- :mod:`repro.workloads.whisper`.
2. Hand-written data structures under the ATLAS lock-based
   failure-atomicity model (heap, queue, skip list) --
   :mod:`repro.workloads.atlas`.
3. New concurrent persistent data structures: CCEH, FAST&FAIR, Dash-LH/EH,
   and the RECIPE conversions (P-ART, P-CLHT, P-Masstree) --
   :mod:`repro.workloads.cceh` / ``fastfair`` / ``dash`` / ``recipe``.

:mod:`repro.workloads.registry` exposes the canonical suite used by every
figure, and :mod:`repro.workloads.microbench` holds the Figure 13
bandwidth microbenchmark.
"""

from repro.workloads.base import Workload, WorkloadResult, run_workload
from repro.workloads.registry import SUITE, get_workload, workload_names

__all__ = [
    "SUITE",
    "Workload",
    "WorkloadResult",
    "get_workload",
    "run_workload",
    "workload_names",
]
