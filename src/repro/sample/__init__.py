"""SimPoint-style sampled simulation.

Full-detail simulation of every op is the honest default, but most
workloads are phase-structured: long stretches of the op stream exercise
the persistence path identically.  Sampling exploits that (Sherwood et
al.'s SimPoint, adapted to op streams instead of basic-block vectors):

1. **fingerprint** the op stream into fixed-size per-thread intervals,
   each summarized by a feature vector (op-kind mix, epoch shape, fence
   mix, line reuse) -- no simulation, just a dry expansion of the
   workload generators (:mod:`repro.sample.fingerprint`);
2. **cluster** the interval vectors with deterministic k-means and pick
   the interval closest to each centroid as the phase representative
   (:mod:`repro.sample.phases`);
3. **simulate** only the representatives (plus a configurable warm-up
   prefix), fast-forwarding the op stream between them, and measure
   per-interval statistics deltas at quiescent ops barriers
   (:mod:`repro.sample.pipeline`);
4. **extrapolate** full-run statistics as the cluster-population-weighted
   sum of representative deltas, with dispersion-based confidence
   bounds.

Accuracy is not assumed: ``repro sample --validate`` (and the pinned
golden gate in ``tests/sample/``) runs the full simulation next to the
sampled one and reports per-metric relative error.
"""

from repro.sample.fingerprint import FEATURE_NAMES, fingerprint_intervals
from repro.sample.phases import PhasePlan, cluster_intervals
from repro.sample.pipeline import (
    SampleConfig,
    SampleEstimate,
    SampleReport,
    run_sampled,
    validate_sampled,
)

__all__ = [
    "FEATURE_NAMES",
    "PhasePlan",
    "SampleConfig",
    "SampleEstimate",
    "SampleReport",
    "cluster_intervals",
    "fingerprint_intervals",
    "run_sampled",
    "validate_sampled",
]
