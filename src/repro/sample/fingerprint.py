"""Interval fingerprints: feature vectors over the dry-expanded op stream.

The workload generators are expanded *without simulation* -- ops are
drawn round-robin across threads, which reproduces a deterministic
approximation of the real interleaving for workloads whose generators
share mutable state.  Every thread's op number ``n`` belongs to interval
``n // interval_ops`` (aligned cuts), and each interval is summarized by
one vector of persistence-relevant features.  The vectors only steer
*clustering*; their absolute scale is normalized away in
:mod:`repro.sample.phases`, so approximate features cost accuracy, not
correctness -- the golden gate measures the resulting error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    Load,
    NewStrand,
    OFence,
    PMAllocator,
    Release,
    Store,
)
from repro.mem.interleave import CACHE_LINE_BYTES
from repro.workloads.registry import get_workload

#: the per-interval feature vector, in order.
FEATURE_NAMES = (
    "store_frac",      # stores / ops
    "load_frac",       # loads / ops
    "compute_frac",    # compute ops / ops
    "fence_frac",      # (ofences + dfences) / ops
    "lock_frac",       # (acquires + releases) / ops
    "dfence_mix",      # dfences / fences (epoch-closing strength)
    "epoch_len",       # mean stores per fence-delimited epoch
    "line_reuse",      # 1 - distinct store lines / stores
    "footprint",       # distinct store lines / ops
    "novelty",         # first-touch lines (never seen before) / ops --
                       # separates the cold-start transient (compulsory
                       # misses) from steady-state phases; without it the
                       # representatives all land in the steady state and
                       # miss-class statistics extrapolate to ~zero.
)


@dataclass
class IntervalSet:
    """Dry-expansion result: per-interval features + per-thread op counts."""

    interval_ops: int
    #: one feature vector (len == len(FEATURE_NAMES)) per interval.
    vectors: List[List[float]]
    #: total ops each thread's generator yields.
    thread_ops: List[int]
    #: per thread: half-open op-index spans during which the thread holds
    #: at least one lock.  Sampling windows must not cut into a span --
    #: executing a Release whose Acquire was skipped (or vice versa)
    #: corrupts lock state -- so window edges snap to the span's end.
    locked_spans: List[List[Tuple[int, int]]]

    @property
    def num_intervals(self) -> int:
        return len(self.vectors)

    @property
    def total_ops(self) -> int:
        return sum(self.thread_ops)

    def snap(self, thread: int, op_index: int) -> int:
        """Smallest lock-free op index >= ``op_index`` for ``thread``."""
        for start, end in self.locked_spans[thread]:
            if start <= op_index < end:
                return end
            if start > op_index:
                break
        return op_index


class _IntervalAccum:
    __slots__ = (
        "ops", "stores", "loads", "computes", "ofences", "dfences",
        "locks", "lines", "epoch_stores", "epochs", "new_lines",
    )

    def __init__(self) -> None:
        self.ops = 0
        self.stores = 0
        self.loads = 0
        self.computes = 0
        self.ofences = 0
        self.dfences = 0
        self.locks = 0
        self.lines: Set[int] = set()
        #: stores since the last fence, summed at each fence.
        self.epoch_stores = 0
        self.epochs = 0
        #: lines first touched (by load or store) in this interval.
        self.new_lines = 0

    def vector(self) -> List[float]:
        ops = max(1, self.ops)
        stores = max(1, self.stores)
        fences = self.ofences + self.dfences
        return [
            self.stores / ops,
            self.loads / ops,
            self.computes / ops,
            fences / ops,
            self.locks / ops,
            self.dfences / max(1, fences),
            self.epoch_stores / max(1, self.epochs),
            1.0 - len(self.lines) / stores if self.stores else 0.0,
            len(self.lines) / ops,
            self.new_lines / ops,
        ]


def fingerprint_intervals(
    workload: str,
    interval_ops: int,
    ops_per_thread: Optional[int] = None,
    num_threads: int = 4,
    seed: int = 7,
) -> IntervalSet:
    """Dry-expand ``workload`` and fingerprint its intervals."""
    if interval_ops < 1:
        raise ValueError("interval_ops must be positive")
    programs = get_workload(
        workload, ops_per_thread=ops_per_thread, seed=seed
    ).programs(PMAllocator(), num_threads)
    accums: Dict[int, _IntervalAccum] = {}
    seen_lines: Set[int] = set()
    pending_stores: Dict[int, int] = {t: 0 for t in range(len(programs))}
    counts = [0] * len(programs)
    depths = [0] * len(programs)
    span_start = [0] * len(programs)
    locked_spans: List[List[Tuple[int, int]]] = [[] for _ in programs]
    alive = list(range(len(programs)))
    while alive:
        still_alive = []
        for thread in alive:
            try:
                op = next(programs[thread])
            except StopIteration:
                continue
            still_alive.append(thread)
            index = counts[thread] // interval_ops
            counts[thread] += 1
            accum = accums.get(index)
            if accum is None:
                accum = accums[index] = _IntervalAccum()
            accum.ops += 1
            if isinstance(op, (Store, Load)):
                base = op.addr // CACHE_LINE_BYTES
                span = max(1, (op.addr % CACHE_LINE_BYTES + op.size
                               + CACHE_LINE_BYTES - 1) // CACHE_LINE_BYTES)
                for i in range(span):
                    line = base + i
                    if line not in seen_lines:
                        seen_lines.add(line)
                        accum.new_lines += 1
                if isinstance(op, Store):
                    accum.stores += 1
                    pending_stores[thread] += 1
                    for i in range(span):
                        accum.lines.add(base + i)
                else:
                    accum.loads += 1
            elif isinstance(op, Compute):
                accum.computes += 1
            elif isinstance(op, OFence):
                accum.ofences += 1
                accum.epoch_stores += pending_stores[thread]
                accum.epochs += 1
                pending_stores[thread] = 0
            elif isinstance(op, DFence):
                accum.dfences += 1
                accum.epoch_stores += pending_stores[thread]
                accum.epochs += 1
                pending_stores[thread] = 0
            elif isinstance(op, Acquire):
                accum.locks += 1
                if depths[thread] == 0:
                    # the acquire op itself is a safe window start; the
                    # unsafe span begins just after it.
                    span_start[thread] = counts[thread]
                depths[thread] += 1
            elif isinstance(op, Release):
                accum.locks += 1
                depths[thread] -= 1
                if depths[thread] == 0:
                    locked_spans[thread].append(
                        (span_start[thread], counts[thread])
                    )
            elif isinstance(op, NewStrand):
                pass
        alive = still_alive
    for thread, depth in enumerate(depths):
        if depth > 0:  # unbalanced program: lock held to the end
            locked_spans[thread].append((span_start[thread], counts[thread]))
    num_intervals = max(accums) + 1 if accums else 0
    vectors = [
        accums[i].vector() if i in accums else [0.0] * len(FEATURE_NAMES)
        for i in range(num_intervals)
    ]
    return IntervalSet(
        interval_ops=interval_ops,
        vectors=vectors,
        thread_ops=counts,
        locked_spans=locked_spans,
    )


__all__ = ["FEATURE_NAMES", "IntervalSet", "fingerprint_intervals"]
