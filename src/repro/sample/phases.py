"""Phase detection: deterministic k-means over interval fingerprints.

Features are z-score normalized per column so no single feature's scale
dominates the distance metric.  Initialization is farthest-first
traversal -- start from the point farthest from the global mean, then
greedily add the point farthest from the chosen set -- which is both
fully deterministic (no RNG; determinism is a hard requirement, the
sampled-accuracy golden gate diffs exact values) and outlier-seeking:
transient phases (the cold-start compulsory-miss ramp, an end-of-run
shape change) are exactly the far points a random init tends to absorb
into a big steady-state cluster.  Iterations are bounded and ties break
by index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass
class PhasePlan:
    """Clustering result: which interval represents each phase."""

    #: cluster label per interval.
    labels: List[int]
    #: representative interval index per cluster (closest to centroid).
    representatives: List[int]
    #: interval population per cluster (weights for extrapolation).
    counts: List[int]
    #: normalized mean member-to-centroid distance per cluster -- the
    #: dispersion heuristic behind the confidence bounds.
    dispersion: List[float]

    @property
    def num_phases(self) -> int:
        return len(self.representatives)


def _normalize(matrix: np.ndarray) -> np.ndarray:
    mean = matrix.mean(axis=0)
    std = matrix.std(axis=0)
    std[std < 1e-12] = 1.0
    return (matrix - mean) / std


def _farthest_first(matrix: np.ndarray, k: int) -> np.ndarray:
    """Deterministic outlier-seeking seed selection (indices)."""
    mean = matrix.mean(axis=0)
    chosen = [int(np.linalg.norm(matrix - mean, axis=1).argmax())]
    min_dist = np.linalg.norm(matrix - matrix[chosen[0]], axis=1)
    while len(chosen) < k:
        nxt = int(min_dist.argmax())
        chosen.append(nxt)
        min_dist = np.minimum(
            min_dist, np.linalg.norm(matrix - matrix[nxt], axis=1)
        )
    return np.asarray(chosen)


def cluster_intervals(
    vectors: List[List[float]], k: int, seed: int = 0, iters: int = 32
) -> PhasePlan:
    """Cluster interval fingerprints into (at most) ``k`` phases.

    ``seed`` is accepted for API stability but unused: initialization is
    farthest-first traversal, which needs no randomness."""
    if not vectors:
        raise ValueError("no intervals to cluster")
    matrix = _normalize(np.asarray(vectors, dtype=np.float64))
    n = matrix.shape[0]
    k = max(1, min(k, n))
    centroids = matrix[_farthest_first(matrix, k)]
    labels = np.zeros(n, dtype=np.int64)
    for _ in range(iters):
        # pairwise distances: (n, k)
        dist = np.linalg.norm(matrix[:, None, :] - centroids[None, :, :],
                              axis=2)
        new_labels = dist.argmin(axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for c in range(k):
            members = matrix[labels == c]
            if len(members):
                centroids[c] = members.mean(axis=0)
    # drop empty clusters, renumber by first-member order for stability
    order = []
    for label in labels:
        if label not in order:
            order.append(int(label))
    remap = {old: new for new, old in enumerate(order)}
    labels = np.asarray([remap[int(label)] for label in labels])
    centroids = centroids[order]
    reps: List[int] = []
    counts: List[int] = []
    dispersion: List[float] = []
    for c in range(len(order)):
        member_idx = np.flatnonzero(labels == c)
        member_dist = np.linalg.norm(
            matrix[member_idx] - centroids[c], axis=1
        )
        reps.append(int(member_idx[int(member_dist.argmin())]))
        counts.append(int(len(member_idx)))
        # mean distance, normalized by the global feature spread (~1 after
        # z-scoring); a tight cluster -> near-zero dispersion.
        dispersion.append(float(member_dist.mean()))
    return PhasePlan(
        labels=[int(label) for label in labels],
        representatives=reps,
        counts=counts,
        dispersion=dispersion,
    )


__all__ = ["PhasePlan", "cluster_intervals"]
