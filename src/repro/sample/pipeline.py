"""Sampled execution: simulate representatives, extrapolate the rest.

The machine runs ONE pass with *skip-wrapper* generators: ops inside an
execution window (a representative interval plus its warm-up prefix) are
yielded to the machine as usual; ops outside are *functionally warmed* --
drawn from the underlying generator without full simulation, but still
applied to the cache hierarchy and the coherence directory so that
window-entry state (MESI ownership, line residency, first-touch sets)
matches the full run.  The wrapper itself signals window edges by
yielding :data:`repro.core.machine.PAUSE`; the machine halts -- without
draining in-flight persist state -- once every core parks, statistics
are snapshotted, and the delta between a window's two edges is the
representative's cost.  The full-run estimate is the anchor interval
(measured exactly: the cold start is a transient no phase represents)
plus the cluster-population-weighted sum of representative deltas plus a
measured tail (the end-of-run drain is global accumulation, equally
unsampleable).

Warm-up exists because a representative's first ops otherwise run
against the cache state the warming approximation left behind;
``warmup_ops`` ops are fully simulated before measurement starts and
excluded from the delta.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.api import (
    Acquire,
    Load,
    Op,
    PMAllocator,
    Program,
    Release,
    Store,
)
from repro.core.machine import PAUSE, YIELD_TURN, Machine
from repro.core.models import resolve_model
from repro.sample.fingerprint import fingerprint_intervals
from repro.sample.phases import PhasePlan, cluster_intervals
from repro.sim.config import MachineConfig
from repro.workloads.registry import get_workload

#: counters whose extrapolated totals the report (and the golden gate)
#: tracks; anything absent from a run is reported as 0.  ``cycles`` is
#: synthetic (engine time), the rest are plain counters summed over
#: scopes -- including the Table VI stall counters.
TRACKED_METRICS = (
    "cycles",
    "cache_hits",
    "cache_misses",
    "pm_demand_reads",
    "dfenceStalled",
    "cyclesStalled",
)

#: members of :data:`TRACKED_METRICS` measured in stall *cycles* (not
#: event counts); validation judges them against total runtime.
STALL_CYCLE_METRICS = frozenset({"dfenceStalled", "cyclesStalled"})


@dataclass(frozen=True)
class SampleConfig:
    """Sampling knobs.  Defaults size intervals so a macro-scale run
    (a few thousand ops/thread) gets >=10x fewer simulated ops with a
    handful of phases.

    Two regions are always simulated exactly, not extrapolated:
    interval 0 (the *cold anchor* -- compulsory misses make the first
    interval unlike any phase representative) and the last
    ``tail_intervals`` intervals plus the end-of-run drain (stall debt
    accumulates over the whole run and is repaid in the final drain;
    that is global accumulation, not phase behavior, so no phase-based
    extrapolation can recover it)."""

    interval_ops: int = 75
    #: interior phase count; None picks ``max(3, min(8, interior//20))``.
    clusters: Optional[int] = None
    warmup_ops: int = 25
    #: trailing intervals simulated exactly (plus the drain).
    tail_intervals: int = 3
    #: accepted for API stability; clustering is deterministic without it.
    cluster_seed: int = 0

    def __post_init__(self) -> None:
        if self.interval_ops < 1:
            raise ValueError("interval_ops must be positive")
        if self.warmup_ops < 0:
            raise ValueError("warmup_ops must be non-negative")
        if self.clusters is not None and self.clusters < 1:
            raise ValueError("clusters must be positive")
        if self.tail_intervals < 1:
            raise ValueError("tail_intervals must be positive")

    def interior_clusters(self, interior: int) -> int:
        k = self.clusters or max(3, min(8, interior // 20))
        return max(1, min(k, interior))


@dataclass
class SampleEstimate:
    """One extrapolated metric with a dispersion-based margin."""

    value: float
    #: relative confidence margin (heuristic: cluster dispersion weighted
    #: by population; validated empirically by the golden gate).
    margin: float

    def bounds(self) -> Tuple[float, float]:
        return (self.value * (1 - self.margin), self.value * (1 + self.margin))


@dataclass
class SampleReport:
    """Everything a sampled run produced."""

    workload: str
    model: str
    num_intervals: int
    interval_ops: int
    representatives: List[int]
    cluster_counts: List[int]
    #: metric -> extrapolated estimate.
    estimates: Dict[str, SampleEstimate]
    #: ops actually simulated / total ops (the speedup proxy: simulation
    #: cost is dominated by executed ops).
    ops_simulated: int
    ops_total: int
    #: filled by :func:`validate_sampled`: metric -> relative error vs a
    #: full run, plus the geomean.
    errors: Dict[str, float] = field(default_factory=dict)
    geomean_error: Optional[float] = None
    full_wall_s: Optional[float] = None
    sampled_wall_s: Optional[float] = None
    #: trailing intervals (plus drain) measured exactly, not extrapolated.
    tail_intervals: int = 0

    @property
    def ops_ratio(self) -> float:
        return self.ops_total / max(1, self.ops_simulated)

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "workload": self.workload,
            "model": self.model,
            "num_intervals": self.num_intervals,
            "interval_ops": self.interval_ops,
            "representatives": list(self.representatives),
            "cluster_counts": list(self.cluster_counts),
            "estimates": {
                name: {"value": est.value, "margin": est.margin}
                for name, est in self.estimates.items()
            },
            "ops_simulated": self.ops_simulated,
            "ops_total": self.ops_total,
            "ops_ratio": self.ops_ratio,
            "tail_intervals": self.tail_intervals,
        }
        if self.errors:
            doc["errors"] = dict(self.errors)
            doc["geomean_error"] = self.geomean_error
        return doc


def _make_warmer(machine: Machine, thread: int):
    """Functional cache + coherence warming for fast-forwarded ops.

    Skipped memory ops still walk the cache hierarchy (state + LRU) and
    drive the MESI directory (a warmed store invalidates other cores'
    copies, exactly as a simulated one would) -- but schedule no events
    and touch no persist state.  Without the cache half, a
    representative interval pays the cold misses of everything skipped
    before it and miss-class statistics overshoot by an order of
    magnitude; without the coherence half, measured windows hit on
    stale private-cache lines the full run would have invalidated, and
    the same statistics undershoot to near zero.  Dependence payloads
    (``transition.source``) are deliberately ignored: warming must not
    open epochs or create cross-core persist ordering.  Counter noise
    from warming lands between a representative's end barrier and the
    next one's start barrier, so measured deltas never include it."""
    hierarchies = machine.hierarchies
    directory = machine.directory
    lines_of = machine.amap.lines_of
    access = hierarchies[thread].access_ex
    path = machine.paths[thread]

    def warm(op: Op) -> None:
        if isinstance(op, Store):
            for line in lines_of(op.addr, op.size):
                access(line, True)
                transition = directory.write(thread, line, path.current_ts)
                for victim in transition.invalidated:
                    hierarchies[victim].invalidate(line)
        elif isinstance(op, Load):
            for line in lines_of(op.addr, op.size):
                access(line, False)
                directory.read(thread, line)

    def end_gap() -> None:
        # The gap skipped this core's fences, so its current epoch has
        # been open since before the gap and now owns every warmed
        # write's dependence payload.  Close it: a measured-window
        # access on another core that picks up the payload must find a
        # *closed* epoch (in the full run the gap's fences long since
        # closed it) -- depending on a stale open epoch stalls commits
        # until this core's next fence, inflating measured cycles.
        path.split_epoch()

    return warm, end_gap


def _sampled_program(
    program: Program,
    segments: List[Tuple[int, int]],
    boundaries: List[int],
    warm,
    end_gap,
) -> Iterator[object]:
    """Yield only ops whose per-thread index falls in ``segments``;
    fast-forward the underlying generator through the gaps (warming the
    caches functionally as it goes), and yield :data:`PAUSE` each time
    the position crosses a measurement boundary.

    Generators sharing mutable state across threads diverge from the
    dry expansion that sized the windows, so the wrapper tracks lock
    depth over the *real* stream and defers every transition --
    skip<->execute AND pauses -- until the depth is zero: a skipped
    Acquire with an executed Release (or vice versa) must be
    impossible, and a core must never park while holding a lock
    (another core could be waiting on it, deadlocking the barrier).

    Every thread yields exactly ``len(boundaries)`` pauses -- trailing
    ones fire even if the generator is exhausted -- so pause rounds
    stay aligned across cores.  Warming yields :data:`YIELD_TURN` every
    ``_WARM_CHUNK`` skipped ops so gap warming interleaves across cores
    instead of running each core's whole gap in one synchronous burst
    (which would skew shared-line MESI ownership toward the core that
    warmed last)."""
    position = 0
    depth = 0
    k = 0
    npause = len(boundaries)
    executing = False
    chunk = 0
    seg_iter = iter(segments)
    seg = next(seg_iter, None)
    while True:
        if depth == 0:
            while k < npause and position >= boundaries[k]:
                k += 1
                yield PAUSE
            if executing and seg is not None and position >= seg[1]:
                seg = next(seg_iter, None)
                executing = False
            if not executing and seg is not None and position >= seg[0]:
                executing = True
                if position:  # no gap precedes the very first op
                    end_gap()
        try:
            op = next(program)
        except StopIteration:
            break
        position += 1
        if isinstance(op, Acquire):
            depth += 1
        elif isinstance(op, Release):
            depth -= 1
        if executing:
            yield op
        else:
            warm(op)
            chunk += 1
            if chunk >= _WARM_CHUNK:
                chunk = 0
                yield YIELD_TURN
    while k < npause:
        k += 1
        yield PAUSE


#: open-ended window sentinel (the tail runs to the end of the stream).
_NO_END = 1 << 62

#: skipped ops warmed between YIELD_TURNs (the cross-core interleaving
#: granularity of functional warming).
_WARM_CHUNK = 8


def _merge_segments(
    segments: List[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    merged: List[Tuple[int, int]] = []
    for start, end in sorted(segments):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def run_sampled(
    workload: str,
    model: str,
    ops_per_thread: Optional[int] = None,
    num_threads: int = 4,
    seed: int = 7,
    config: Optional[SampleConfig] = None,
    machine_config: Optional[MachineConfig] = None,
) -> SampleReport:
    """Run ``workload`` under ``model`` with sampled simulation."""
    cfg = config or SampleConfig()
    spec = resolve_model(model)
    mcfg = machine_config or MachineConfig()

    intervals = fingerprint_intervals(
        workload,
        cfg.interval_ops,
        ops_per_thread=ops_per_thread,
        num_threads=num_threads,
        seed=seed,
    )
    n = intervals.num_intervals
    if n == 0:
        raise ValueError(f"workload {workload!r} produced no ops")

    L = cfg.interval_ops
    W = cfg.warmup_ops
    # Partition: [anchor 0] [interior 1..tail_start-1] [tail + drain].
    tail_start = max(1, n - cfg.tail_intervals)
    interior = list(range(1, tail_start))

    reps: List[int] = []
    counts: List[int] = []
    dispersion: List[float] = []
    if interior:
        plan = cluster_intervals(
            [intervals.vectors[i] for i in interior],
            cfg.interior_clusters(len(interior)),
            seed=cfg.cluster_seed,
        )
        reps = [interior[0] + r for r in plan.representatives]
        counts = list(plan.counts)
        dispersion = list(plan.dispersion)

    # The anchor runs without warm-up (the full run is genuinely cold
    # there); the tail window runs to the end of the stream and through
    # the final drain.
    windows = [(0, L)] + [
        (max(0, r * L - W), (r + 1) * L) for r in reps
    ] + [(max(0, tail_start * L - W), _NO_END)]
    segments = _merge_segments(windows)
    boundaries = sorted(
        {L} | {r * L for r in reps} | {(r + 1) * L for r in reps}
        | {tail_start * L}
    )

    programs = get_workload(
        workload, ops_per_thread=ops_per_thread, seed=seed
    ).programs(PMAllocator(), num_threads)
    machine = Machine(mcfg, run_config=spec.run_config(seed=seed))
    # Gaps advance simulated time at a nominal 1 cycle per warmed op
    # (one YIELD_TURN per _WARM_CHUNK warmed ops) so cycle-driven
    # background machinery -- persist-buffer flush issue, epoch
    # commits -- is not frozen while the op stream fast-forwards.
    machine.yield_turn_cycles = _WARM_CHUNK
    wrapped = [
        _sampled_program(p, segments, boundaries, *_make_warmer(machine, t))
        for t, p in enumerate(programs)
    ]

    snapshots: Dict[int, Dict[str, float]] = {0: {}}
    started = False
    for boundary in boundaries:
        if not started:
            machine.run_to_pause(wrapped)
            started = True
        else:
            machine.continue_to_pause()
        snap: Dict[str, float] = dict(machine.stats.as_dict())
        # mean per-core arrival, not engine.now (= last arrival): the
        # straggler wait at each pause would otherwise inflate every
        # window's cycle delta (see Machine.mean_arrival_cycle).
        snap["cycles"] = machine.mean_arrival_cycle()
        snapshots[boundary] = snap
    # tail: run the remaining stream and the end-of-run drain for real.
    result = machine.continue_run()
    final: Dict[str, float] = dict(result.stats.as_dict())
    final["cycles"] = float(result.drain_cycles)

    def delta(lo: Dict[str, float], hi: Dict[str, float]) -> Dict[str, float]:
        return {
            key: hi.get(key, 0.0) - lo.get(key, 0.0)
            for key in set(lo) | set(hi)
        }

    anchor_delta = delta(snapshots[0], snapshots[L])
    tail_delta = delta(snapshots[tail_start * L], final)
    cluster_deltas = [
        delta(snapshots[r * L], snapshots[(r + 1) * L]) for r in reps
    ]

    estimates: Dict[str, SampleEstimate] = {}
    for metric in TRACKED_METRICS:
        # anchor and tail are measured exactly (weight 1, no dispersion)
        value = anchor_delta.get(metric, 0.0) + tail_delta.get(metric, 0.0)
        spread = 0.0
        for cluster, count in enumerate(counts):
            contribution = count * cluster_deltas[cluster].get(metric, 0.0)
            value += contribution
            spread += abs(contribution) * dispersion[cluster]
        margin = spread / abs(value) if value else 0.0
        # dispersion is in normalized feature units; damp it into a
        # relative margin (empirically calibrated by the golden gate).
        estimates[metric] = SampleEstimate(
            value=value, margin=min(1.0, 0.25 * margin)
        )

    ops_simulated = sum(core.ops_executed for core in machine.cores)
    return SampleReport(
        workload=workload,
        model=spec.name,
        num_intervals=n,
        interval_ops=L,
        representatives=reps,
        cluster_counts=counts,
        estimates=estimates,
        ops_simulated=ops_simulated,
        ops_total=intervals.total_ops,
        tail_intervals=n - tail_start,
    )


def validate_sampled(
    workload: str,
    model: str,
    ops_per_thread: Optional[int] = None,
    num_threads: int = 4,
    seed: int = 7,
    config: Optional[SampleConfig] = None,
    machine_config: Optional[MachineConfig] = None,
) -> SampleReport:
    """Sampled run + full run; fills per-metric relative errors."""
    import time

    start = time.perf_counter()
    report = run_sampled(
        workload, model, ops_per_thread=ops_per_thread,
        num_threads=num_threads, seed=seed, config=config,
        machine_config=machine_config,
    )
    report.sampled_wall_s = time.perf_counter() - start

    spec = resolve_model(model)
    mcfg = machine_config or MachineConfig()
    programs = get_workload(
        workload, ops_per_thread=ops_per_thread, seed=seed
    ).programs(PMAllocator(), num_threads)
    start = time.perf_counter()
    machine = Machine(mcfg, run_config=spec.run_config(seed=seed))
    result = machine.run(programs)
    report.full_wall_s = time.perf_counter() - start

    full: Dict[str, float] = dict(result.stats.as_dict())
    full["cycles"] = float(result.drain_cycles)
    errors: Dict[str, float] = {}
    product = 1.0
    measured = 0
    total_cycles = full.get("cycles", 0.0)
    for metric in TRACKED_METRICS:
        actual = full.get(metric, 0.0)
        if actual < 100:
            # Relative error on sparse counters is noise, not signal: a
            # metric with <100 events over a ~200-interval run averages
            # well under one event per interval, which no phase-sampling
            # method can estimate from a dozen windows.
            continue
        if metric in STALL_CYCLE_METRICS and actual < 0.005 * total_cycles:
            # Stall counters are denominated in cycles; one that accounts
            # for under 0.5% of runtime is invisible in any bottom-line
            # conclusion, and its *relative* error is dominated by a
            # handful of end-of-run drain events.
            continue
        est = report.estimates[metric].value
        err = abs(est - actual) / actual
        errors[metric] = err
        product *= 1.0 + err
        measured += 1
    report.errors = errors
    report.geomean_error = (
        product ** (1.0 / measured) - 1.0 if measured else 0.0
    )
    return report


__all__ = [
    "SampleConfig",
    "SampleEstimate",
    "SampleReport",
    "TRACKED_METRICS",
    "run_sampled",
    "validate_sampled",
]
