"""`repro.bench` -- the performance-measurement harness.

The simulator's wall-clock performance is a first-class, regression-
gated artifact:

- :mod:`repro.bench.micro` -- tight loops over the hot structures
  (event queue, persist buffer, WPQ, epoch table).
- :mod:`repro.bench.suites` -- the pinned ``micro`` / ``macro`` /
  ``smoke`` suites and the suite runner.
- :mod:`repro.bench.record` -- canonical ``BENCH_<date>.json`` records
  with machine fingerprint and git SHA.
- :mod:`repro.bench.compare` -- the ``--compare A B --max-regress N%``
  gate CI runs against ``benchmarks/results/baseline.json``.

See ``docs/performance.md`` for usage and the baseline-update
procedure.
"""

from repro.bench.compare import (
    BenchDelta,
    Comparison,
    compare_records,
    parse_max_regress,
)
from repro.bench.record import (
    BenchRecord,
    BenchResult,
    current_git_sha,
    machine_fingerprint,
    peak_rss_kb,
)
from repro.bench.suites import (
    SUITES,
    BenchCase,
    run_case,
    run_suite,
    suite_cases,
)

__all__ = [
    "BenchCase",
    "BenchDelta",
    "BenchRecord",
    "BenchResult",
    "Comparison",
    "SUITES",
    "compare_records",
    "current_git_sha",
    "machine_fingerprint",
    "parse_max_regress",
    "peak_rss_kb",
    "run_case",
    "run_suite",
    "suite_cases",
]
