"""Canonical benchmark records.

A ``repro bench`` run emits one JSON document (``BENCH_<date>.json`` by
default) holding every measurement plus the provenance needed to decide
whether two records are comparable: the machine fingerprint and the git
SHA the simulator was built from.  Records are the interchange format of
the perf-regression gate: CI compares a fresh record against the
committed ``benchmarks/results/baseline.json`` with
``repro bench --compare``.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional

#: Bump when the record layout changes incompatibly.
RECORD_SCHEMA_VERSION = 1


def machine_fingerprint() -> Dict[str, Any]:
    """Identify the machine a record was produced on.

    Wall-time numbers are only comparable between records with matching
    fingerprints; ``repro bench --compare`` warns (but does not refuse)
    on a mismatch.
    """
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpus": os.cpu_count() or 0,
    }


def current_git_sha(cwd: Optional[str] = None) -> str:
    """The repository HEAD, or ``"unknown"`` outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            check=False,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def peak_rss_kb() -> int:
    """Peak resident set size of this process in KiB (0 if unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if platform.system() == "Darwin":  # pragma: no cover - reports bytes
        return int(usage // 1024)
    return int(usage)


@dataclass
class BenchResult:
    """One benchmark measurement (the best wall time of ``reps`` runs)."""

    name: str
    suite: str
    ops: int
    wall_s: float
    ops_per_sec: float
    #: simulator events executed (micro) or simulated cycles (macro);
    #: a determinism cross-check: must match between comparable records.
    events: int
    peak_rss_kb: int
    reps: int
    #: sampled-suite only: geomean relative error of the sampled run vs
    #: the full run.  None (and omitted from JSON) for exact suites.
    error: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.name,
            "suite": self.suite,
            "ops": self.ops,
            "wall_s": self.wall_s,
            "ops_per_sec": self.ops_per_sec,
            "events": self.events,
            "peak_rss_kb": self.peak_rss_kb,
            "reps": self.reps,
        }
        if self.error is not None:
            doc["error"] = self.error
        return doc

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BenchResult":
        error = data.get("error")
        return cls(
            name=str(data["name"]),
            suite=str(data["suite"]),
            ops=int(data["ops"]),
            wall_s=float(data["wall_s"]),
            ops_per_sec=float(data["ops_per_sec"]),
            events=int(data.get("events", 0)),
            peak_rss_kb=int(data.get("peak_rss_kb", 0)),
            reps=int(data.get("reps", 1)),
            error=float(error) if error is not None else None,
        )


@dataclass
class BenchRecord:
    """A full ``repro bench`` emission: measurements plus provenance."""

    suite: str
    results: List[BenchResult]
    created: str
    git_sha: str
    machine: Dict[str, Any] = field(default_factory=machine_fingerprint)
    schema: int = RECORD_SCHEMA_VERSION

    @classmethod
    def build(cls, suite: str, results: List[BenchResult]) -> "BenchRecord":
        return cls(
            suite=suite,
            results=results,
            created=datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
            git_sha=current_git_sha(),
        )

    def default_filename(self) -> str:
        """``BENCH_<UTC date>.json`` -- the canonical record name."""
        return f"BENCH_{self.created[:10]}.json"

    def by_name(self) -> Dict[str, BenchResult]:
        return {result.name: result for result in self.results}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "suite": self.suite,
            "created": self.created,
            "git_sha": self.git_sha,
            "machine": self.machine,
            "results": [result.to_dict() for result in self.results],
        }

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BenchRecord":
        schema = int(data.get("schema", 0))
        if schema > RECORD_SCHEMA_VERSION:
            raise ValueError(
                f"bench record schema {schema} is newer than this tool "
                f"understands ({RECORD_SCHEMA_VERSION})"
            )
        return cls(
            suite=str(data.get("suite", "unknown")),
            results=[
                BenchResult.from_dict(entry)
                for entry in data.get("results", [])
            ],
            created=str(data.get("created", "")),
            git_sha=str(data.get("git_sha", "unknown")),
            machine=dict(data.get("machine", {})),
            schema=schema,
        )

    @classmethod
    def load(cls, path: str) -> "BenchRecord":
        with open(path) as handle:
            data = json.load(handle)
        if not isinstance(data, dict):
            raise ValueError(f"{path}: not a bench record (expected object)")
        return cls.from_dict(data)


__all__ = [
    "BenchRecord",
    "BenchResult",
    "RECORD_SCHEMA_VERSION",
    "current_git_sha",
    "machine_fingerprint",
    "peak_rss_kb",
]
