"""Record comparison: the perf-regression gate.

``repro bench --compare BASE NEW --max-regress 10%`` loads two
:class:`~repro.bench.record.BenchRecord` files, matches measurements by
name, and fails when any common benchmark's throughput dropped by more
than the allowed fraction.  The geomean speedup over all common
benchmarks is reported alongside the per-bench ratios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from repro.bench.record import BenchRecord


def parse_max_regress(text: str) -> float:
    """Parse a regression budget: ``"10%"`` or ``"0.10"`` -> ``0.10``."""
    raw = text.strip()
    if raw.endswith("%"):
        value = float(raw[:-1]) / 100.0
    else:
        value = float(raw)
    if not 0.0 <= value < 1.0:
        raise ValueError(
            f"max regress must be in [0%, 100%): {text!r}"
        )
    return value


@dataclass
class BenchDelta:
    """One benchmark present in both records."""

    name: str
    base_ops_per_sec: float
    new_ops_per_sec: float
    events_match: bool

    @property
    def ratio(self) -> float:
        """New throughput over base (>1 = faster)."""
        if self.base_ops_per_sec <= 0:
            return 1.0
        return self.new_ops_per_sec / self.base_ops_per_sec


@dataclass
class Comparison:
    """The outcome of comparing two records."""

    deltas: List[BenchDelta]
    max_regress: float
    only_base: List[str] = field(default_factory=list)
    only_new: List[str] = field(default_factory=list)
    machines_match: bool = True

    @property
    def geomean(self) -> float:
        ratios = [d.ratio for d in self.deltas if d.ratio > 0]
        if not ratios:
            return 1.0
        return math.exp(sum(math.log(r) for r in ratios) / len(ratios))

    @property
    def regressions(self) -> List[BenchDelta]:
        floor = 1.0 - self.max_regress
        return [d for d in self.deltas if d.ratio < floor]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines: List[str] = []
        width = max([len(d.name) for d in self.deltas] + [9])
        floor = 1.0 - self.max_regress
        header = (
            f"{'benchmark':<{width}}  {'base ops/s':>12}  "
            f"{'new ops/s':>12}  {'ratio':>7}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for delta in self.deltas:
            flag = ""
            if delta.ratio < floor:
                flag = "  REGRESSION"
            elif not delta.events_match:
                flag = "  (events differ: output changed, not comparable)"
            lines.append(
                f"{delta.name:<{width}}  {delta.base_ops_per_sec:>12.0f}  "
                f"{delta.new_ops_per_sec:>12.0f}  {delta.ratio:>6.2f}x{flag}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'geomean':<{width}}  {'':>12}  {'':>12}  {self.geomean:>6.2f}x"
        )
        for name in self.only_base:
            lines.append(f"only in base record: {name}")
        for name in self.only_new:
            lines.append(f"only in new record: {name}")
        if not self.machines_match:
            lines.append(
                "warning: records come from different machines; wall-time "
                "ratios may reflect hardware, not code"
            )
        gate = "PASS" if self.ok else "FAIL"
        lines.append(
            f"gate: {gate} (allowed regression "
            f"{self.max_regress * 100:.0f}%, {len(self.regressions)} over)"
        )
        return "\n".join(lines)


def compare_records(
    base: BenchRecord, new: BenchRecord, max_regress: float = 0.10
) -> Comparison:
    """Match measurements by name and evaluate the regression gate."""
    base_by_name = base.by_name()
    new_by_name = new.by_name()
    deltas = [
        BenchDelta(
            name=name,
            base_ops_per_sec=base_by_name[name].ops_per_sec,
            new_ops_per_sec=new_by_name[name].ops_per_sec,
            events_match=(
                base_by_name[name].events == new_by_name[name].events
            ),
        )
        for name in sorted(base_by_name)
        if name in new_by_name
    ]
    return Comparison(
        deltas=deltas,
        max_regress=max_regress,
        only_base=sorted(set(base_by_name) - set(new_by_name)),
        only_new=sorted(set(new_by_name) - set(base_by_name)),
        machines_match=base.machine == new.machine,
    )


__all__ = ["BenchDelta", "Comparison", "compare_records", "parse_max_regress"]
