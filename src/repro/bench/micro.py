"""Micro benchmarks: tight loops over the simulator's hot structures.

Each function drives exactly one data structure the profile-guided
optimization pass targets -- the event queue, the persist buffer's
enqueue/issue/ack cycle, the WPQ's insert/coalesce/drain cycle, and the
epoch table's safety check -- so a regression in any one of them shows up
as a regression in exactly one bench.  Every bench returns
``(ops, events)`` where ``events`` is a deterministic count (simulator
events executed, or the structure's op count) that doubles as a
correctness fingerprint: two runs of the same bench must report the same
``events``.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.epoch_table import EpochTable
from repro.core.persist_buffer import (
    EnqueueResult,
    PBEntry,
    PersistBuffer,
    select_fifo_any,
)
from repro.mem.wpq import WritePendingQueue
from repro.sim.engine import Engine
from repro.sim.stats import StatsRegistry

#: cache-line stride used to synthesize distinct line addresses.
_LINE_BYTES = 64


def bench_event_queue(n: int) -> Tuple[int, int]:
    """Throughput of the engine's schedule/pop loop.

    64 concurrent self-rescheduling chains share a countdown of ``n``
    events, keeping the heap at a realistic depth without ever draining.
    """
    engine = Engine()
    remaining = n

    def tick() -> None:
        nonlocal remaining
        remaining -= 1
        if remaining > 0:
            engine.schedule(1, tick)

    for _ in range(min(64, n)):
        engine.schedule(1, tick)
    engine.run()
    return n, engine.events_executed


def bench_pb_drain(n: int) -> Tuple[int, int]:
    """Persist-buffer enqueue -> issue -> ack cycle under back-pressure.

    A fifo-any (baseline) policy with a 4-cycle flush round trip; the
    feeder stalls on FULL and resumes via the space waiter, exactly like
    a core's store path.
    """
    engine = Engine()
    stats = StatsRegistry()
    pb = PersistBuffer(
        engine, capacity=64, issue_cycles=1, stats=stats, scope="c0", core=0
    )
    pb.select_entry = select_fifo_any

    def send_flush(entry: PBEntry) -> None:
        engine.schedule(4, lambda: pb.handle_ack(entry))

    pb.send_flush = send_flush
    issued = 0

    def feed() -> None:
        nonlocal issued
        while issued < n:
            outcome = pb.enqueue(issued * _LINE_BYTES, issued, epoch_ts=1)
            if outcome is EnqueueResult.FULL:
                pb.space_waiter.wait(feed)
                return
            issued += 1

    engine.schedule(0, feed)
    engine.run()
    return n, engine.events_executed


def bench_wpq_insert_evict(n: int) -> Tuple[int, int]:
    """WPQ push/coalesce/drain cycle at a full queue.

    Addresses cycle through 4x the queue capacity, so pushes alternate
    between fresh inserts (forcing a head drain) and coalescing hits --
    both sides of the WPQ fast path.
    """
    engine = Engine()
    stats = StatsRegistry()
    capacity = 32
    wpq = WritePendingQueue(engine, capacity, stats, scope="mc0")
    drained = 0
    for i in range(n):
        line = (i % (capacity * 4)) * _LINE_BYTES
        if not wpq.push(line, i):
            wpq.pop_head()
            drained += 1
            wpq.push(line, i)
    return n, drained


def bench_epoch_table_lookup(n: int) -> Tuple[int, int]:
    """Safety-check throughput over a table of open epochs.

    32 epochs with outstanding writes (so none can commit and the table
    stays populated); the loop sweeps ``is_safe`` across all of them --
    the query every persist-buffer policy evaluation performs.
    """
    engine = Engine()
    stats = StatsRegistry()
    table = EpochTable(engine, capacity=64, stats=stats, scope="c0", core=0)
    open_epochs = 32
    for _ in range(open_epochs - 1):
        table.on_enqueue(table.current_ts)
        table.open_epoch()
    table.on_enqueue(table.current_ts)
    safe = 0
    first = 1
    for i in range(n):
        if table.is_safe(first + (i % open_epochs)):
            safe += 1
    return n, safe


__all__ = [
    "bench_epoch_table_lookup",
    "bench_event_queue",
    "bench_pb_drain",
    "bench_wpq_insert_evict",
]
