"""Benchmark suite definitions and the suite runner.

Three pinned suites:

- ``micro`` -- tight loops over the simulator's hot structures
  (:mod:`repro.bench.micro`); sensitive to single-structure regressions.
- ``macro`` -- end-to-end simulations: the three microbench workloads
  plus the two PMDK-style workloads, each under the baseline and ASAP
  models.  This is the suite the >=2x optimization target is measured
  on.
- ``smoke`` -- scaled-down versions of both, fast enough to run on
  every pull request (the CI perf gate).

Every case is pinned -- fixed workload, ops, threads, and seed -- so two
records produced from the same source tree are comparable measurement
for measurement, and the deterministic ``events`` count doubles as a
fingerprint that the simulation itself did not change.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.bench import micro
from repro.bench.record import BenchRecord, BenchResult, peak_rss_kb

#: (workload, model, ops_per_thread) cells of the macro suite.
MACRO_CELLS: Tuple[Tuple[str, str, int], ...] = (
    ("bandwidth", "baseline", 400),
    ("bandwidth", "asap_rp", 400),
    ("fence_latency", "baseline", 400),
    ("fence_latency", "asap_rp", 400),
    ("coalescing", "baseline", 400),
    ("coalescing", "asap_rp", 400),
    ("nstore", "baseline", 200),
    ("nstore", "asap_rp", 200),
    ("cceh", "baseline", 200),
    ("cceh", "asap_rp", 200),
)

#: smaller macro cells for the per-PR smoke gate.
SMOKE_CELLS: Tuple[Tuple[str, str, int], ...] = (
    ("bandwidth", "baseline", 64),
    ("bandwidth", "asap_rp", 64),
    ("nstore", "baseline", 48),
    ("nstore", "asap_rp", 48),
    ("cceh", "baseline", 48),
    ("cceh", "asap_rp", 48),
)

#: every macro cell runs 4 threads, 2 MCs, seed 7 (the tier-1 defaults).
MACRO_THREADS = 4
MACRO_SEED = 7

#: (workload, model, ops_per_thread, SampleConfig overrides) cells of
#: the sampled suite -- a subset of the accuracy-gate cells
#: (scripts/gen_sample_golden.py), so the error each record carries is
#: the same quantity the golden gate bounds at <=5%.
SAMPLED_CELLS: Tuple[Tuple[str, str, int, Dict[str, int]], ...] = (
    ("queue", "baseline", 2000, {}),
    ("nstore", "asap_rp", 2000, {}),
    ("cceh", "asap_rp", 2000, {"clusters": 10}),
)


@dataclass(frozen=True)
class BenchCase:
    """One pinned benchmark: a name and a zero-argument runner.

    The runner returns ``(ops, events)``: the unit count the throughput
    is computed over, and a deterministic fingerprint count.
    """

    name: str
    run: Callable[[], Tuple[int, int]]


def _micro_case(
    name: str, fn: Callable[[int], Tuple[int, int]], n: int
) -> BenchCase:
    return BenchCase(name=name, run=lambda: fn(n))


def _macro_case(workload: str, model: str, ops: int) -> BenchCase:
    def run() -> Tuple[int, int]:
        # imported lazily: repro.exp pulls in the workload registry and
        # every model, which micro-only invocations never need.
        from repro.exp import RunSpec

        spec = RunSpec(
            workload,
            model,
            ops_per_thread=ops,
            num_threads=MACRO_THREADS,
            seed=MACRO_SEED,
        )
        result = spec.execute()
        return result.result.ops_executed, result.result.runtime_cycles

    return BenchCase(name=f"macro/{workload}/{model}", run=run)


def micro_cases(scale: int = 1) -> List[BenchCase]:
    """The micro suite; ``scale`` divides the iteration counts."""
    return [
        _micro_case(
            "micro/event_queue", micro.bench_event_queue, 200_000 // scale
        ),
        _micro_case("micro/pb_drain", micro.bench_pb_drain, 40_000 // scale),
        _micro_case(
            "micro/wpq_insert_evict",
            micro.bench_wpq_insert_evict,
            200_000 // scale,
        ),
        _micro_case(
            "micro/epoch_table_lookup",
            micro.bench_epoch_table_lookup,
            200_000 // scale,
        ),
    ]


def macro_cases(
    cells: Tuple[Tuple[str, str, int], ...] = MACRO_CELLS
) -> List[BenchCase]:
    return [_macro_case(w, m, ops) for w, m, ops in cells]


def _sampled_case(
    workload: str, model: str, ops: int, overrides: Dict[str, int]
) -> BenchCase:
    def run() -> Tuple[int, int]:
        from repro.sample import SampleConfig, run_sampled

        report = run_sampled(
            workload, model, ops_per_thread=ops,
            num_threads=MACRO_THREADS, seed=MACRO_SEED,
            config=SampleConfig(**overrides),
        )
        # full-run-equivalent ops over sampled wall time = effective
        # throughput; simulated-op count is the determinism fingerprint.
        return report.ops_total, report.ops_simulated

    return BenchCase(name=f"sampled/{workload}/{model}", run=run)


def suite_cases(suite: str) -> List[BenchCase]:
    if suite == "micro":
        return micro_cases()
    if suite == "macro":
        return macro_cases()
    if suite == "smoke":
        return micro_cases(scale=10) + macro_cases(SMOKE_CELLS)
    if suite == "all":
        return micro_cases() + macro_cases()
    if suite == "sampled":
        return [_sampled_case(w, m, ops, o) for w, m, ops, o in SAMPLED_CELLS]
    raise KeyError(f"unknown bench suite: {suite!r} (use {sorted(SUITES)})")


#: suite name -> description, for ``repro bench --list`` style help.
SUITES: Dict[str, str] = {
    "micro": "tight loops over hot simulator structures",
    "macro": "end-to-end workloads under baseline and ASAP",
    "smoke": "scaled-down micro+macro set for the per-PR CI gate",
    "all": "micro + macro",
    "sampled": "SimPoint-style sampled runs: effective ops/s + accuracy",
}


def run_sampled_case(
    workload: str,
    model: str,
    ops: int,
    overrides: Dict[str, int],
    reps: int,
) -> BenchResult:
    """One sampled-suite measurement.

    Throughput is *effective*: full-run-equivalent ops over sampled wall
    time, so a sampled record's ops/s is directly comparable to the
    macro suite's (the gap between them IS the sampling speedup).  The
    first rep runs the full simulation alongside (``validate_sampled``)
    to fill the error column; remaining reps time the sampled run alone.
    ``events`` is the ops actually simulated -- the determinism
    fingerprint for --compare.
    """
    from repro.sample import SampleConfig, run_sampled, validate_sampled

    cfg = SampleConfig(**overrides)
    report = validate_sampled(
        workload, model, ops_per_thread=ops,
        num_threads=MACRO_THREADS, seed=MACRO_SEED, config=cfg,
    )
    best_wall = report.sampled_wall_s
    for _ in range(max(1, reps) - 1):
        start = time.perf_counter()
        run_sampled(
            workload, model, ops_per_thread=ops,
            num_threads=MACRO_THREADS, seed=MACRO_SEED, config=cfg,
        )
        best_wall = min(best_wall, time.perf_counter() - start)
    return BenchResult(
        name=f"sampled/{workload}/{model}",
        suite="sampled",
        ops=report.ops_total,
        wall_s=best_wall,
        ops_per_sec=report.ops_total / best_wall if best_wall > 0 else 0.0,
        events=report.ops_simulated,
        peak_rss_kb=peak_rss_kb(),
        reps=max(1, reps),
        error=round(report.geomean_error, 6),
    )


def run_named_case(item: Tuple[str, str, int]) -> BenchResult:
    """Module-level trampoline: run one ``(suite, case_name, reps)``.

    Bench cases close over lambdas, so they do not pickle; this resolves
    the case by name inside the worker instead, which is what lets a
    suite fan out over process executors and the fabric's generic
    ``call`` task kind.
    """
    suite, name, reps = item
    if suite == "sampled":
        for workload, model, ops, overrides in SAMPLED_CELLS:
            if f"sampled/{workload}/{model}" == name:
                return run_sampled_case(workload, model, ops, overrides, reps)
        raise KeyError(f"unknown sampled case {name!r}")
    for case in suite_cases(suite):
        if case.name == name:
            return run_case(case, reps)
    raise KeyError(f"unknown case {name!r} in suite {suite!r}")


def run_case(case: BenchCase, reps: int) -> BenchResult:
    """Measure one case: best wall time of ``reps`` repetitions."""
    best_wall = float("inf")
    ops = 0
    events = 0
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        ops, events = case.run()
        wall = time.perf_counter() - start
        if wall < best_wall:
            best_wall = wall
    suite = case.name.split("/", 1)[0]
    return BenchResult(
        name=case.name,
        suite=suite,
        ops=ops,
        wall_s=best_wall,
        ops_per_sec=ops / best_wall if best_wall > 0 else 0.0,
        events=events,
        peak_rss_kb=peak_rss_kb(),
        reps=max(1, reps),
    )


def run_suite(
    suite: str,
    reps: int = 3,
    progress: Callable[[str, BenchResult], None] = lambda name, result: None,
    executor=None,
) -> BenchRecord:
    """Run every case of ``suite`` and assemble the canonical record.

    With ``executor`` (e.g. a :class:`repro.fabric.FabricExecutor`) the
    cases fan out as ``(suite, name, reps)`` items through
    :func:`run_named_case`.  Wall-clock numbers then come from separate
    worker processes -- fine for throughput surveys, but the CI perf
    gate keeps the serial path for minimal measurement noise.
    """
    results: List[BenchResult] = []
    if executor is not None:
        if suite == "sampled":
            names = [
                f"sampled/{w}/{m}" for w, m, _ops, _o in SAMPLED_CELLS
            ]
        else:
            names = [case.name for case in suite_cases(suite)]
        results = executor.map(
            run_named_case, [(suite, name, reps) for name in names]
        )
        for result in results:
            progress(result.name, result)
        return BenchRecord.build(suite=suite, results=results)
    if suite == "sampled":
        # sampled cases produce their own BenchResult (they time the
        # sampled run, not the validating full run beside it).
        for workload, model, ops, overrides in SAMPLED_CELLS:
            result = run_sampled_case(workload, model, ops, overrides, reps)
            results.append(result)
            progress(result.name, result)
        return BenchRecord.build(suite=suite, results=results)
    for case in suite_cases(suite):
        result = run_case(case, reps)
        results.append(result)
        progress(case.name, result)
    return BenchRecord.build(suite=suite, results=results)


__all__ = [
    "BenchCase",
    "MACRO_CELLS",
    "MACRO_SEED",
    "MACRO_THREADS",
    "SAMPLED_CELLS",
    "SMOKE_CELLS",
    "SUITES",
    "macro_cases",
    "micro_cases",
    "run_case",
    "run_named_case",
    "run_sampled_case",
    "run_suite",
    "suite_cases",
]
