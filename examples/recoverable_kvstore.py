#!/usr/bin/env python3
"""A recoverable key-value store, end to end.

Two threads hammer a persistent chained-hash KV store
(:mod:`repro.pmds.pkvstore`).  Its crash safety comes entirely from one
ofence per put -- the out-of-place entry is *ordered* before the bucket
head that names it -- so on ordering-preserving hardware a recovered
pointer can never dangle.

We cut power at a series of instants, run the store's actual recovery
procedure against each crash image, and check what it found.  Then we do
the same on the ``asap_no_undo`` ablation with a wide flush window and a
jammed controller, and watch the recovery procedure flag dangling
pointers.

Run:  python examples/recoverable_kvstore.py
"""

import random

from repro import (
    Compute,
    DFence,
    HardwareModel,
    MachineConfig,
    PMAllocator,
    RunConfig,
    run_and_crash,
)
from repro.pmds import PersistentKVStore


def kv_programs(store, puts_per_thread=15, seed=11):
    programs = []
    for thread in range(2):
        rng = random.Random(seed * 31 + thread)

        def program(thread=thread, rng=rng):
            for i in range(puts_per_thread):
                yield from store.put(
                    f"user:{rng.randrange(8)}", f"session-{thread}.{i}"
                )
                yield Compute(rng.randrange(40, 150))
            yield DFence()

        return_program = program()
        programs.append(return_program)
    return programs


def main() -> None:
    print("--- ASAP: crash anywhere, recover cleanly ---")
    for crash_cycle in (400, 1200, 3000, 8000, 10**8):
        heap = PMAllocator()
        store = PersistentKVStore(heap, buckets=4, pool_slots=64)
        state = run_and_crash(
            MachineConfig(num_cores=2),
            RunConfig(hardware=HardwareModel.ASAP),
            kv_programs(store),
            crash_cycle,
        )
        recovery = store.recover(state)
        when = "end" if crash_cycle == 10**8 else f"cycle {crash_cycle:>5}"
        print(f"crash at {when}: {recovery.entries_found:2d} entries, "
              f"{len(recovery.values)} keys, "
              f"{'clean' if recovery.clean else 'DANGLING POINTERS'}")
        # spot-check: every recovered value is one this run actually put
        for key, value in recovery.values.items():
            assert value.startswith("session-"), (key, value)
    print()
    print("Every recovered chain was intact: the entry a head names is")
    print("always durable, because the entry was ordered before the head.")
    print()

    print("--- the same store on unsound hardware (no undo records) ---")
    from repro import Store

    def jammer(heap, parity):
        """A noisy neighbour saturating one memory controller."""
        chunk = heap.alloc(64 * 1024, align=256)
        blocks = [
            addr for addr in range(chunk, chunk + 120 * 256, 256)
            if (addr // 256) % 2 == parity
        ]

        def program():
            for i in range(120):
                yield Store(blocks[i % len(blocks)], 64)
            yield DFence()

        return program()

    dangles = 0
    total = 0
    for crash_cycle in range(200, 6000, 79):
        total += 1
        heap = PMAllocator()
        store = PersistentKVStore(heap, buckets=4, pool_slots=64)
        # jam the controller the entry pool starts on, leaving the bucket
        # heads' controller fast -- the dangerous direction: a head can
        # persist while the entry it names is stuck.
        entry_parity = (store.slot_addr(0) // 256) % 2
        programs = kv_programs(store, puts_per_thread=12) + [
            jammer(heap, entry_parity)
        ]
        state = run_and_crash(
            MachineConfig(num_cores=3, pb_inflight_max=32),
            RunConfig(hardware=HardwareModel.ASAP_NO_UNDO),
            programs,
            crash_cycle,
        )
        recovery = store.recover(state)
        if not recovery.clean:
            dangles += 1
    print(f"dangling-pointer recoveries: {dangles} of {total} crash instants")
    print("Eager flushing without recovery information lets a bucket head")
    print("outlive the entry it names; the store's own recovery procedure")
    print("detects the corruption -- but the data is gone.")


if __name__ == "__main__":
    main()
