#!/usr/bin/env python3
"""Crash a machine mid-run and watch ASAP's undo records save the day.

Two threads append records to a shared persistent log under a lock; the
record payloads carry real values so we can inspect what a recovery would
see.  We cut power at a series of instants and, for each crash:

1. reconstruct the post-crash memory image (WPQ drain + undo unwinding,
   Section V-E),
2. run the machine-checked Theorem 2 verifier,
3. show which records survived -- always a dependency-closed prefix.

Then we do the same with the UNSOUND ``asap_no_undo`` ablation (eager
flushing with the recovery table disabled) and show the verifier catching
real ordering violations.

Run:  python examples/crash_recovery.py
"""

from repro import (
    Acquire,
    Compute,
    DFence,
    HardwareModel,
    MachineConfig,
    OFence,
    PMAllocator,
    Release,
    RunConfig,
    Store,
    run_and_crash,
    check_consistency,
)
from repro.core.api import Load


def ledger_workload(heap: PMAllocator, entries_per_thread: int = 10):
    """Two tellers appending to one persistent ledger."""
    lock = heap.alloc_lock()
    ledger = heap.alloc_lines(64)
    head = heap.alloc_lines(1)
    counter = {"next": 0}

    def teller(tid):
        def program():
            for i in range(entries_per_thread):
                yield Compute(120)
                yield Acquire(lock)
                yield Load(head, 8)
                slot = counter["next"]
                counter["next"] += 1
                # entry first, ordered, then the head pointer names it
                yield Store(ledger + slot * 64, 48,
                            payload=f"entry-{slot}-by-t{tid}")
                yield OFence()
                yield Store(head, 8, payload=slot)
                yield Release(lock)
            yield DFence()

        return program()

    return [teller(0), teller(1)], ledger, head


def survivors(state, ledger, head, total):
    entries = []
    for slot in range(total):
        payload = state.surviving_payload(ledger + slot * 64)
        if payload is not None:
            entries.append(payload)
    head_value = state.surviving_payload(head, default="(pristine)")
    return entries, head_value


def crash_series(hardware: HardwareModel, label: str) -> None:
    print(f"--- {label} ---")
    total = 20
    violations = 0
    for crash_cycle in (500, 1500, 3000, 6000, 12000, 10**8):
        heap = PMAllocator()
        programs, ledger, head = ledger_workload(heap)
        state = run_and_crash(
            MachineConfig(num_cores=2),
            RunConfig(hardware=hardware),
            programs,
            crash_cycle,
        )
        report = check_consistency(state.log, state.media)
        entries, head_value = survivors(state, ledger, head, total)
        when = "end of run" if crash_cycle == 10**8 else f"cycle {crash_cycle}"
        verdict = "consistent" if report.consistent else "INCONSISTENT"
        print(f"crash at {when:>12}: {len(entries):2d}/{total} entries, "
              f"head={head_value!s:>12}  -> {verdict}")
        if not report.consistent:
            violations += 1
            print(f"    {report.violations[0].describe()}")
    print()
    return violations


def adversarial_workload(heap: PMAllocator):
    """One controller jammed with traffic, a dependency crossing to the
    other: the precise situation undo records exist for."""

    def mc_lines(base, mc, count):
        out, addr = [], base
        while len(out) < count:
            if (addr // 256) % 2 == mc:
                out.append(addr)
            addr += 64
        return out

    chunk = heap.alloc(64 * 1024, align=256)
    burst = mc_lines(chunk, 0, 24)
    a = mc_lines(chunk + 32 * 1024, 0, 1)[0]
    b = mc_lines(chunk + 48 * 1024, 1, 1)[0]

    def producer():
        for addr in burst:
            yield Store(addr, 64)
        yield Store(a, 64, payload="the-data")
        yield Compute(2000)
        yield OFence()
        yield DFence()

    def consumer():
        yield Compute(60)
        yield Load(a, 8)  # reads the producer's data: a dependency
        yield Store(b, 64, payload="pointer-to-data")  # must not outlive it
        yield OFence()
        yield DFence()

    return [producer(), consumer()]


def hunt_violation(hardware: HardwareModel) -> int:
    """Crash the adversarial scenario at many instants; count violations."""
    from repro.sim.config import PersistencyModel

    violations = 0
    example = None
    for crash_cycle in range(50, 4000, 37):
        heap = PMAllocator()
        state = run_and_crash(
            MachineConfig(num_cores=2),
            RunConfig(hardware=hardware, persistency=PersistencyModel.EPOCH),
            adversarial_workload(heap),
            crash_cycle,
        )
        report = check_consistency(state.log, state.media)
        if not report.consistent:
            violations += 1
            if example is None:
                example = (crash_cycle, report.violations[0].describe())
    if example:
        print(f"  first violation at cycle {example[0]}:")
        print(f"    {example[1]}")
    return violations


def main() -> None:
    crash_series(HardwareModel.ASAP, "ASAP: speculation with undo records")
    print("Every crash recovered to a consistent state: the head pointer")
    print("never names a ledger entry that failed to persist, because the")
    print("memory controllers unwound any out-of-order speculation.\n")

    print("--- adversarial scenario: jammed controller + dependency ---")
    print("ASAP (undo records on):")
    asap_bad = hunt_violation(HardwareModel.ASAP)
    print(f"  {asap_bad} violations across ~100 crash instants\n")
    print("ablation, recovery table disabled (UNSOUND):")
    no_undo_bad = hunt_violation(HardwareModel.ASAP_NO_UNDO)
    print(f"  {no_undo_bad} violations across the same instants\n")
    if no_undo_bad and not asap_bad:
        print("Without undo records the consumer's pointer can become")
        print("durable while the data it names is still in flight --")
        print("exactly the inconsistency Theorem 2 rules out for ASAP.")


if __name__ == "__main__":
    main()
