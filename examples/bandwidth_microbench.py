#!/usr/bin/env python3
"""The Figure 13 experiment: multi-controller bandwidth under ordering.

Each thread writes 256-byte blocks that alternate between the two memory
controllers, with an ofence between blocks.  A conservative design must
wait for controller A's acknowledgement before flushing the next block to
controller B -- so one controller always idles.  ASAP flushes the next
block early (speculatively) and keeps both controllers busy.

Run:  python examples/bandwidth_microbench.py
"""

from repro.analysis.report import render_table
from repro.analysis.sweeps import ModelSpec, sweep
from repro.sim.config import HardwareModel, MachineConfig, PersistencyModel
from repro.workloads.microbench import BandwidthMicrobench

OPS = 300
CPU_GHZ = 2.0

MODELS = [
    ModelSpec("baseline", HardwareModel.BASELINE, PersistencyModel.RELEASE),
    ModelSpec("hops", HardwareModel.HOPS, PersistencyModel.RELEASE),
    ModelSpec("asap", HardwareModel.ASAP, PersistencyModel.RELEASE),
]


def main() -> None:
    for threads in (1, 2, 4):
        config = MachineConfig(num_cores=threads)
        result = sweep([BandwidthMicrobench], MODELS, config, ops_per_thread=OPS)
        total_bytes = BandwidthMicrobench(ops_per_thread=OPS).bytes_written(threads)
        rows = []
        for model in ("baseline", "hops", "asap"):
            cycles = result.runs[("bandwidth", model)].result.drain_cycles
            gbps = total_bytes / (cycles / (CPU_GHZ * 1e9)) / 1e9
            spec = result.stat("bandwidth", model, "totSpecWrites")
            rows.append([model, cycles, f"{gbps:.2f}", spec])
        print(render_table(
            ["model", "cycles", "GB/s", "early flushes"],
            rows,
            title=f"{threads} thread(s), 256B ofence-ordered writes, 2 MCs",
        ))
        print()
    print("The early-flush column is the mechanism: every block ASAP sends")
    print("before its predecessor's ACK is bandwidth a conservative design")
    print("left on the table.  (Paper: ASAP ~2x HOPS on this benchmark.)")


if __name__ == "__main__":
    main()
