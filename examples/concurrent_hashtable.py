#!/usr/bin/env python3
"""Cross-thread dependencies up close: a concurrent persistent hash table.

The paper's motivation (Section III): modern concurrent persistent data
structures -- CCEH, Dash, the RECIPE conversions -- synchronize constantly,
so one thread's persists frequently depend on another's.  Conservative
designs stall flushing on every such dependency; ASAP flushes through
them speculatively and resolves them with direct CDR messages.

This example runs the CCEH workload at increasing thread counts and shows
how each design's throughput responds to the growing dependency rate
(Figure 10's mechanism).

Run:  python examples/concurrent_hashtable.py
"""

from repro.analysis.report import render_table
from repro.analysis.sweeps import ModelSpec, sweep
from repro.sim.config import HardwareModel, MachineConfig, PersistencyModel
from repro.workloads.cceh import CCEH

OPS = 120

MODELS = [
    ModelSpec("baseline", HardwareModel.BASELINE, PersistencyModel.RELEASE),
    ModelSpec("hops", HardwareModel.HOPS, PersistencyModel.RELEASE),
    ModelSpec("asap", HardwareModel.ASAP, PersistencyModel.RELEASE),
    ModelSpec("eadr", HardwareModel.EADR, PersistencyModel.RELEASE),
]


def main() -> None:
    rows = []
    for threads in (1, 2, 4, 8):
        config = MachineConfig(num_cores=threads)
        result = sweep([CCEH], MODELS, config, ops_per_thread=OPS)
        deps = result.stat("cceh", "asap", "interTEpochConflict")
        throughput = {
            model: threads * OPS / result.runtime("cceh", model)
            for model in ("baseline", "hops", "asap", "eadr")
        }
        rows.append([
            threads,
            deps,
            *(f"{throughput[m] * 1000:.2f}" for m in
              ("baseline", "hops", "asap", "eadr")),
            f"{throughput['asap'] / throughput['hops']:.2f}x",
        ])
    print(render_table(
        ["threads", "cross-deps", "baseline", "HOPS", "ASAP", "eADR",
         "ASAP/HOPS"],
        rows,
        title="CCEH inserts: throughput in ops per 1000 cycles",
    ))
    print()
    print("As threads (and therefore cross-thread dependencies) grow, HOPS")
    print("pays a polling round-trip per dependency while ASAP keeps")
    print("flushing -- the gap widens exactly as the paper's scaling study")
    print("describes.")


if __name__ == "__main__":
    main()
