#!/usr/bin/env python3
"""Trace-driven comparison: record once, replay everywhere.

The execution-driven workloads interleave differently under different
hardware models (timing changes who wins each lock).  For strict
apples-to-apples comparisons, record the exact op streams of one run and
replay them against every model: any difference is then purely the
hardware's doing.

This example records a CCEH run under eADR (the timing-neutral ideal),
saves the trace to disk, reloads it, and replays it under all six
designs.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import HardwareModel, Machine, MachineConfig, PMAllocator, RunConfig
from repro.analysis.report import render_table
from repro.trace import Trace, record_programs
from repro.workloads import get_workload

MODELS = (
    HardwareModel.BASELINE,
    HardwareModel.HOPS,
    HardwareModel.VORPAL,
    HardwareModel.ASAP,
    HardwareModel.EADR,
)


def main() -> None:
    # 1. record under the timing-neutral ideal
    workload = get_workload("cceh", ops_per_thread=60)
    heap = PMAllocator()
    wrapped, trace = record_programs(workload.programs(heap, 4))
    machine = Machine(
        MachineConfig(num_cores=4), RunConfig(hardware=HardwareModel.EADR)
    )
    machine.run(wrapped)
    print(f"recorded {trace.num_ops()} ops across {trace.num_threads} threads")

    # 2. round-trip through a trace file
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "cceh.trace.jsonl"
        trace.save(path)
        loaded = Trace.load(path)
        print(f"saved + reloaded {path.name} "
              f"({path.stat().st_size / 1024:.1f} KiB)\n")

    # 3. replay the identical op streams under every design
    rows = []
    baseline_cycles = None
    for hardware in MODELS:
        machine = Machine(
            MachineConfig(num_cores=4), RunConfig(hardware=hardware)
        )
        result = machine.run(loaded.programs())
        if baseline_cycles is None:
            baseline_cycles = result.runtime_cycles
        rows.append([
            hardware.value,
            result.runtime_cycles,
            f"{baseline_cycles / result.runtime_cycles:.2f}x",
            result.stats.total("totSpecWrites"),
        ])
    print(render_table(
        ["model", "cycles", "speedup", "early flushes"],
        rows,
        title="identical CCEH op streams, six designs",
    ))
    print()
    print("Because every model executed byte-identical op streams, the")
    print("spread in the speedup column is attributable to the persistence")
    print("hardware alone -- no workload-interleaving noise.")


if __name__ == "__main__":
    main()
