#!/usr/bin/env python3
"""Strand persistency: independent commit chains (the Section VII-E idea).

A logging thread updates two independent structures -- an append-only
journal and a metadata table -- alternating between them with an ofence
after every update.  Under plain epoch persistency the two structures'
epochs form one chain: a slow journal epoch delays every later metadata
commit.  Declaring each structure a *strand* (one `NewStrand` per switch)
cuts the false ordering: each structure's chain commits independently.

The effect shows up in three places:

1. fewer *early* flushes (a strand-start epoch is safe immediately);
2. a cheaper final dfence (commit chains run in parallel);
3. after a crash, one structure's recent writes can survive the other's
   loss -- which the (strand-aware) Theorem 2 checker accepts.

Run:  python examples/strand_persistency.py
"""

from repro import (
    DFence,
    HardwareModel,
    Machine,
    MachineConfig,
    OFence,
    PMAllocator,
    RunConfig,
    Store,
    check_consistency,
    crash_machine,
)
from repro.core.api import Compute, NewStrand


def workload(heap: PMAllocator, use_strands: bool, updates: int = 40):
    journal = heap.alloc_lines(64)
    metadata = heap.alloc_lines(16)

    def program():
        for i in range(updates):
            if use_strands:
                yield NewStrand()
            yield Store(journal + (i % 64) * 64, 64)  # journal append
            yield OFence()
            if use_strands:
                yield NewStrand()
            yield Store(metadata + (i % 16) * 64, 16)  # metadata update
            yield OFence()
            yield Compute(40)
        yield DFence()

    return program()


def run(use_strands: bool):
    machine = Machine(
        MachineConfig(num_cores=1), RunConfig(hardware=HardwareModel.ASAP)
    )
    heap = PMAllocator()
    result = machine.run([workload(heap, use_strands)])
    return result


def main() -> None:
    plain = run(use_strands=False)
    stranded = run(use_strands=True)
    print("ASAP, one thread, alternating journal/metadata updates:")
    print(f"  {'':22s}{'plain epochs':>14s}{'strands':>10s}")
    for label, getter in [
        ("runtime (cycles)", lambda r: r.runtime_cycles),
        ("early flushes", lambda r: r.stats.total("totSpecWrites")),
        ("undo records", lambda r: r.stats.total("totalUndo")),
        ("dfence stall (cyc)", lambda r: r.stats.total("dfenceStalled")),
    ]:
        print(f"  {label:22s}{getter(plain):>14d}{getter(stranded):>10d}")
    print()

    # Crash the stranded run midway and show independent survival.
    machine = Machine(
        MachineConfig(num_cores=1), RunConfig(hardware=HardwareModel.ASAP)
    )
    heap = PMAllocator()
    machine.run_until([workload(heap, use_strands=True)], crash_cycle=2500)
    state = crash_machine(machine)
    report = check_consistency(state.log, state.media)
    print(f"crash at cycle 2500: {report.summary()}")
    print("The two structures' strands persist independently; without the")
    print("NewStrand boundaries the same crash state would violate epoch")
    print("ordering (a later metadata epoch surviving a lost journal one).")


if __name__ == "__main__":
    main()
