#!/usr/bin/env python3
"""Figure 8 in miniature: one workload across all six hardware designs.

Pick any Table III workload (default: the Dash-EH hash table, one of the
dependency-heavy structures the paper highlights) and run it on the
paper's 4-core / 2-MC machine under every evaluated model.  Prints the
speedup over the Intel baseline and the stall breakdown that explains it.

Run:  python examples/compare_models.py [workload] [ops_per_thread]
"""

import sys

from repro.analysis.report import render_table
from repro.analysis.sweeps import STANDARD_MODELS, sweep
from repro.sim.config import MachineConfig
from repro.workloads import get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "dash_eh"
    ops = int(sys.argv[2]) if len(sys.argv) > 2 else 150
    workload_cls = type(get_workload(name))

    config = MachineConfig(num_cores=4)
    result = sweep([workload_cls], STANDARD_MODELS, config, ops_per_thread=ops)

    rows = []
    for model in [m.name for m in STANDARD_MODELS]:
        run = result.runs[(name, model)]
        stats = run.result.stats
        rows.append([
            model,
            run.runtime_cycles,
            f"{result.speedup(name, model):.2f}x",
            stats.total("interTEpochConflict"),
            stats.total("totSpecWrites"),
            stats.total("cyclesBlocked"),
            stats.total("dfenceStalled") + stats.total("sfenceStalled"),
        ])
    print(render_table(
        ["model", "cycles", "speedup", "cross-deps", "early flushes",
         "PB blocked", "fence stalls"],
        rows,
        title=f"{name} on 4 cores / 2 MCs ({ops} ops/thread)",
    ))
    print()
    print("Reading the table:")
    print(" * baseline pays fence stalls (the core waits for every flush);")
    print(" * HOPS moves the cost into PB blocked cycles (conservative")
    print("   flushing can't issue writes whose epoch isn't safe);")
    print(" * ASAP's early flushes make both stall columns collapse,")
    print("   landing within a few percent of the eADR ideal.")


if __name__ == "__main__":
    main()
