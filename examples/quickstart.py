#!/usr/bin/env python3
"""Quickstart: run one program on ASAP and read the core statistics.

Builds the paper's Table II machine (scaled down to one core), runs a
small transactional loop (log -> data -> commit marker, the classic
persistent-memory update pattern), and prints the runtime together with
the seven artifact-appendix statistics (Table VI).

Run:  python examples/quickstart.py
"""

from repro import (
    DFence,
    HardwareModel,
    Machine,
    MachineConfig,
    OFence,
    PMAllocator,
    RunConfig,
    Store,
)
from repro.core.api import Compute


def transactional_program(heap: PMAllocator, transactions: int = 50):
    """log record -> ofence -> data update -> ofence -> commit -> dfence."""
    log = heap.alloc_lines(16)
    table = heap.alloc_lines(32)
    marker = heap.alloc_lines(1)

    def program():
        for tx in range(transactions):
            yield Compute(150)  # figure out what to write
            yield Store(log + (tx % 16) * 64, 64)  # journal entry
            yield OFence()  # log before data
            yield Store(table + (tx % 32) * 64, 32)  # the update itself
            yield OFence()  # data before commit
            yield Store(marker, 8)  # commit record
            yield DFence()  # durable before replying
            yield Compute(100)  # reply to client

    return program()


def main() -> None:
    config = MachineConfig(num_cores=1)
    run_config = RunConfig(hardware=HardwareModel.ASAP)

    heap = PMAllocator()
    machine = Machine(config, run_config)
    result = machine.run([transactional_program(heap)])

    print(f"model:    ASAP (release persistency)")
    print(f"runtime:  {result.runtime_cycles} cycles "
          f"({result.runtime_ns:.0f} ns at 2 GHz)")
    print(f"drained:  {result.drain_cycles} cycles")
    print()
    print("Table VI statistics:")
    for name, value in result.table_vi().items():
        print(f"  {name:20s} = {value}")
    print()
    print("Interpretation: totSpecWrites counts flushes that left the")
    print("persist buffer before their epoch was safe -- ASAP's eager")
    print("flushing at work.  Each one that found pristine memory made an")
    print("undo record (totalUndo), the recovery information that unwinds")
    print("speculation if power fails.")


if __name__ == "__main__":
    main()
