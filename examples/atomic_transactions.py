#!/usr/bin/env python3
"""Atomicity on top of ordering: software transactions over ASAP.

The paper positions ASAP as an *ordering* substrate: "if applications do
require atomicity, ASAP can be coupled with ... software transactions".
This example is that coupling, with a twist that shows what hardware
ordering is worth:

- **dfence commits** (PMDK-style) stall the core at every transaction end
  until the commit record is durable;
- **ordered commits** only *order* the commit record and let cross-thread
  persist ordering (the thing ASAP accelerates) carry correctness.

We run a bank-transfer workload both ways on several hardware models,
measure throughput, then crash the adversarial variant a hundred times to
show ordered commits are exactly as safe as the hardware's ordering --
atomic on ASAP, broken on the no-undo ablation.

Run:  python examples/atomic_transactions.py
"""

from repro.analysis.report import render_table
from repro.core.api import PMAllocator
from repro.core.crash import run_and_crash
from repro.core.machine import Machine
from repro.sim.config import HardwareModel, MachineConfig, RunConfig
from repro.tx import DurabilityMode, check_atomicity, recover
from repro.tx.scenarios import adversarial_workload, bank_workload

TXS = 40


def throughput(hardware: HardwareModel, mode: DurabilityMode) -> float:
    heap = PMAllocator()
    programs, managers, _pvars = bank_workload(
        heap, mode, txs_per_thread=TXS
    )
    machine = Machine(MachineConfig(num_cores=2), RunConfig(hardware=hardware))
    result = machine.run(programs)
    return 2 * TXS / result.runtime_cycles * 1000  # txs per kcycle


def violations(hardware: HardwareModel, mode: DurabilityMode) -> int:
    bad = 0
    for crash_cycle in range(50, 6000, 53):
        heap = PMAllocator()
        programs, managers, pvars = adversarial_workload(heap, mode)
        state = run_and_crash(
            MachineConfig(num_cores=2), RunConfig(hardware=hardware),
            programs, crash_cycle,
        )
        recovery = recover(state, managers, pvars)
        if not check_atomicity(recovery, managers, initial={}).atomic:
            bad += 1
    return bad


def main() -> None:
    rows = []
    for hardware in (HardwareModel.BASELINE, HardwareModel.HOPS,
                     HardwareModel.ASAP, HardwareModel.EADR):
        dfence = throughput(hardware, DurabilityMode.DFENCE)
        ordered = throughput(hardware, DurabilityMode.ORDERED)
        rows.append([
            hardware.value, f"{dfence:.2f}", f"{ordered:.2f}",
            f"{100 * (ordered / dfence - 1):+.0f}%",
        ])
    print(render_table(
        ["model", "dfence commits", "ordered commits", "ordered gain"],
        rows,
        title="Bank transfers: throughput in transactions per 1000 cycles",
    ))
    print()
    print("Note how the gain is a property of the hardware: ASAP turns the")
    print("removed dfence into pure speed (matching eADR); HOPS actually")
    print("slows down -- without the dfence draining them, its epochs pile")
    print("up behind conservative flushing.")
    print()

    print("Crashing the adversarial scenario ~113 times per configuration:")
    for hardware in (HardwareModel.ASAP, HardwareModel.ASAP_NO_UNDO):
        for mode in DurabilityMode:
            bad = violations(hardware, mode)
            verdict = "ATOMICITY BROKEN" if bad else "atomic"
            print(f"  {hardware.value:13s} + {mode.value:7s} commits: "
                  f"{bad:3d} violations -> {verdict}")
    print()
    print("Ordered commits ride on the hardware's persist ordering: free")
    print("speed on ASAP, silent corruption on hardware that reorders")
    print("persists without recovery information.")


if __name__ == "__main__":
    main()
